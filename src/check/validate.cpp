#include "check/validate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <utility>

namespace qp::check {

namespace {

std::string num(double x) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", x);
  return buffer;
}

std::string idx2(int i, int j) {
  return "(" + std::to_string(i) + ", " + std::to_string(j) + ")";
}

bool triangle_violated(const graph::Metric& m, int i, int j, int k,
                       double tolerance) {
  return m(i, k) > m(i, j) + m(j, k) + tolerance;
}

/// Shared core of the two validate_instance overloads.
ValidationReport validate_instance_parts(
    const graph::Metric& metric, const std::vector<double>& capacities,
    const quorum::QuorumSystem& system, const quorum::AccessStrategy& strategy,
    const std::vector<double>& element_loads,
    const MetricCheckOptions& options) {
  ValidationReport report;
  report.merge(validate_metric(metric, options));

  const int n = metric.num_points();
  if (static_cast<int>(capacities.size()) != n) {
    report.add("instance/capacity-count",
               std::to_string(capacities.size()) + " capacities for " +
                   std::to_string(n) + " nodes");
  }
  for (std::size_t v = 0; v < capacities.size(); ++v) {
    if (!std::isfinite(capacities[v]) || capacities[v] < 0.0) {
      report.add("instance/capacity-negative",
                 "cap(" + std::to_string(v) + ") = " + num(capacities[v]));
      break;
    }
  }

  const int universe = system.universe_size();
  if (system.num_quorums() == 0) {
    report.add("system/empty", "quorum system has no quorums");
  }
  for (int q = 0; q < system.num_quorums(); ++q) {
    const quorum::Quorum& quorum = system.quorum(q);
    if (quorum.empty()) {
      report.add("system/empty-quorum", "Q_" + std::to_string(q));
      break;
    }
    const auto out_of_range = [universe](int u) {
      return u < 0 || u >= universe;
    };
    if (std::any_of(quorum.begin(), quorum.end(), out_of_range)) {
      report.add("system/element-out-of-range",
                 "Q_" + std::to_string(q) + " leaves U = {0.." +
                     std::to_string(universe - 1) + "}");
      break;
    }
  }

  if (strategy.num_quorums() != system.num_quorums()) {
    report.add("strategy/size-mismatch",
               std::to_string(strategy.num_quorums()) + " probabilities for " +
                   std::to_string(system.num_quorums()) + " quorums");
  } else {
    double total = 0.0;
    bool negative = false;
    for (int q = 0; q < strategy.num_quorums(); ++q) {
      const double p = strategy.probability(q);
      if (p < 0.0 || !std::isfinite(p)) negative = true;
      total += p;
    }
    if (negative) {
      report.add("strategy/negative", "some p(Q) < 0 or non-finite");
    }
    if (std::abs(total - 1.0) > 1e-9) {
      report.add("strategy/not-normalized", "sum p(Q) = " + num(total));
    }
  }

  if (strategy.num_quorums() == system.num_quorums()) {
    const std::vector<double> expected =
        quorum::element_loads(system, strategy);
    if (expected.size() != element_loads.size()) {
      report.add("instance/load-count",
                 std::to_string(element_loads.size()) + " cached loads for " +
                     std::to_string(expected.size()) + " elements");
    } else {
      for (std::size_t u = 0; u < expected.size(); ++u) {
        if (std::abs(expected[u] - element_loads[u]) > 1e-9) {
          report.add("instance/load-mismatch",
                     "load(" + std::to_string(u) + ") cached " +
                         num(element_loads[u]) + " vs recomputed " +
                         num(expected[u]));
          break;
        }
      }
    }
  }
  return report;
}

ValidationReport validate_placement_parts(
    const core::Placement& placement, int universe_size, int num_nodes,
    const std::vector<double>& element_loads,
    const std::vector<double>& capacities,
    const PlacementCheckOptions& options) {
  ValidationReport report;
  if (static_cast<int>(placement.size()) != universe_size) {
    report.add("placement/size",
               std::to_string(placement.size()) + " entries for |U| = " +
                   std::to_string(universe_size));
    return report;
  }
  for (std::size_t u = 0; u < placement.size(); ++u) {
    if (placement[u] < 0 || placement[u] >= num_nodes) {
      report.add("placement/out-of-range",
                 "f(" + std::to_string(u) + ") = " +
                     std::to_string(placement[u]) + " not in V = {0.." +
                     std::to_string(num_nodes - 1) + "}");
      return report;
    }
  }
  std::vector<double> loads(static_cast<std::size_t>(num_nodes), 0.0);
  for (std::size_t u = 0; u < placement.size(); ++u) {
    loads[static_cast<std::size_t>(placement[u])] += element_loads[u];
  }
  for (int v = 0; v < num_nodes; ++v) {
    const double load = loads[static_cast<std::size_t>(v)];
    const double cap = capacities[static_cast<std::size_t>(v)];
    if (load > options.max_load_factor * cap + options.tolerance) {
      report.add("placement/over-capacity",
                 "load_f(" + std::to_string(v) + ") = " + num(load) + " > " +
                     num(options.max_load_factor) + " * cap = " +
                     num(options.max_load_factor * cap));
    }
  }
  return report;
}

}  // namespace

void ValidationReport::add(std::string code, std::string detail) {
  issues.push_back({std::move(code), std::move(detail)});
}

void ValidationReport::merge(const ValidationReport& other) {
  issues.insert(issues.end(), other.issues.begin(), other.issues.end());
}

std::string ValidationReport::to_string() const {
  std::string out;
  for (const ValidationIssue& issue : issues) {
    out += issue.code + ": " + issue.detail + "\n";
  }
  return out;
}

ValidationReport validate_metric(const graph::Metric& metric,
                                 const MetricCheckOptions& options) {
  ValidationReport report;
  const int n = metric.num_points();
  bool bad_value = false;
  bool bad_diagonal = false;
  bool asymmetric = false;
  for (int i = 0; i < n && !(bad_value && bad_diagonal && asymmetric); ++i) {
    for (int j = 0; j < n; ++j) {
      const double d = metric(i, j);
      if (!bad_value && (!std::isfinite(d) || d < 0.0)) {
        report.add("metric/bad-value", "d" + idx2(i, j) + " = " + num(d));
        bad_value = true;
      }
      if (!bad_diagonal && i == j && d != 0.0) {
        report.add("metric/nonzero-diagonal",
                   "d" + idx2(i, i) + " = " + num(d));
        bad_diagonal = true;
      }
      if (!asymmetric &&
          std::abs(d - metric(j, i)) > options.tolerance) {
        report.add("metric/asymmetric",
                   "d" + idx2(i, j) + " = " + num(d) + " vs d" + idx2(j, i) +
                       " = " + num(metric(j, i)));
        asymmetric = true;
      }
    }
  }
  if (bad_value) return report;  // triangle checks are meaningless

  if (n <= options.exhaustive_triangle_limit) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        for (int k = 0; k < n; ++k) {
          if (triangle_violated(metric, i, j, k, options.tolerance)) {
            report.add("metric/triangle",
                       "d" + idx2(i, k) + " = " + num(metric(i, k)) +
                           " > d" + idx2(i, j) + " + d" + idx2(j, k) + " = " +
                           num(metric(i, j) + metric(j, k)));
            return report;
          }
        }
      }
    }
  } else {
    std::mt19937_64 rng(options.seed);
    std::uniform_int_distribution<int> pick(0, n - 1);
    for (int s = 0; s < options.triangle_samples; ++s) {
      const int i = pick(rng);
      const int j = pick(rng);
      const int k = pick(rng);
      if (triangle_violated(metric, i, j, k, options.tolerance)) {
        report.add("metric/triangle",
                   "sampled triple " + std::to_string(i) + ", " +
                       std::to_string(j) + ", " + std::to_string(k) +
                       " violates d(i,k) <= d(i,j) + d(j,k)");
        return report;
      }
    }
  }
  return report;
}

ValidationReport validate_strategy(const quorum::QuorumSystem& system,
                                   const std::vector<double>& probabilities) {
  ValidationReport report;
  if (static_cast<int>(probabilities.size()) != system.num_quorums()) {
    report.add("strategy/size-mismatch",
               std::to_string(probabilities.size()) + " probabilities for " +
                   std::to_string(system.num_quorums()) + " quorums");
    return report;
  }
  double total = 0.0;
  bool negative = false;
  for (std::size_t q = 0; q < probabilities.size(); ++q) {
    const double p = probabilities[q];
    if (!negative && (p < 0.0 || !std::isfinite(p))) {
      report.add("strategy/negative",
                 "p(Q_" + std::to_string(q) + ") = " + num(p));
      negative = true;
    }
    total += p;
  }
  if (!negative && std::abs(total - 1.0) > 1e-9) {
    report.add("strategy/not-normalized", "sum p(Q) = " + num(total));
  }
  return report;
}

ValidationReport validate_instance(const core::QppInstance& instance,
                                   const MetricCheckOptions& options) {
  ValidationReport report = validate_instance_parts(
      instance.metric(), instance.capacities(), instance.system(),
      instance.strategy(), instance.element_loads(), options);

  const std::vector<double>& weights = instance.client_weights();
  if (static_cast<int>(weights.size()) != instance.num_nodes()) {
    report.add("instance/weight-count",
               std::to_string(weights.size()) + " client weights for " +
                   std::to_string(instance.num_nodes()) + " nodes");
    return report;
  }
  double total = 0.0;
  for (std::size_t v = 0; v < weights.size(); ++v) {
    if (weights[v] < 0.0 || !std::isfinite(weights[v])) {
      report.add("instance/weight-negative",
                 "w(" + std::to_string(v) + ") = " + num(weights[v]));
      return report;
    }
    total += weights[v];
  }
  if (std::abs(total - 1.0) > 1e-9) {
    report.add("instance/weights-not-normalized", "sum w(v) = " + num(total));
  }
  return report;
}

ValidationReport validate_instance(const core::SsqppInstance& instance,
                                   const MetricCheckOptions& options) {
  ValidationReport report = validate_instance_parts(
      instance.metric(), instance.capacities(), instance.system(),
      instance.strategy(), instance.element_loads(), options);
  if (instance.source() < 0 || instance.source() >= instance.num_nodes()) {
    report.add("instance/source-out-of-range",
               "v0 = " + std::to_string(instance.source()));
  }
  return report;
}

ValidationReport validate_placement(const core::QppInstance& instance,
                                    const core::Placement& placement,
                                    const PlacementCheckOptions& options) {
  return validate_placement_parts(placement, instance.system().universe_size(),
                                  instance.num_nodes(),
                                  instance.element_loads(),
                                  instance.capacities(), options);
}

ValidationReport validate_placement(const core::SsqppInstance& instance,
                                    const core::Placement& placement,
                                    const PlacementCheckOptions& options) {
  return validate_placement_parts(placement, instance.system().universe_size(),
                                  instance.num_nodes(),
                                  instance.element_loads(),
                                  instance.capacities(), options);
}

ValidationReport validate_lp_solution(const core::SsqppInstance& instance,
                                      const core::FractionalSsqpp& solution,
                                      const LpCheckOptions& options) {
  ValidationReport report;
  if (solution.status != lp::SolveStatus::kOptimal) {
    report.add("lp/not-optimal",
               "status = " + lp::to_string(solution.status));
    return report;
  }
  const int n = solution.num_nodes;
  const int universe = solution.universe_size;
  const int quorums = solution.num_quorums;
  if (n != instance.num_nodes() ||
      universe != instance.system().universe_size() ||
      quorums != instance.system().num_quorums()) {
    report.add("lp/shape-mismatch",
               "solution dimensions do not match the instance");
    return report;
  }
  if (solution.x_tu.size() !=
          static_cast<std::size_t>(n) * static_cast<std::size_t>(universe) ||
      solution.x_tq.size() !=
          static_cast<std::size_t>(n) * static_cast<std::size_t>(quorums)) {
    report.add("lp/shape-mismatch", "x_tu / x_tq size is not n*|U| / n*|Q|");
    return report;
  }

  // Node ordering: a permutation sorted by distance from the source.
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (int t = 0; t < n; ++t) {
    const int v = solution.node_order[static_cast<std::size_t>(t)];
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) {
      report.add("lp/node-order", "node_order is not a permutation of V");
      return report;
    }
    seen[static_cast<std::size_t>(v)] = true;
    const double expected = instance.metric()(instance.source(), v);
    if (std::abs(solution.sorted_distance[static_cast<std::size_t>(t)] -
                 expected) > options.tolerance) {
      report.add("lp/distance-mismatch",
                 "d_" + std::to_string(t) + " != d(v0, node_order[t])");
      return report;
    }
    if (t > 0 && solution.sorted_distance[static_cast<std::size_t>(t)] +
                         options.tolerance <
                     solution.sorted_distance[static_cast<std::size_t>(t - 1)]) {
      report.add("lp/distance-unsorted",
                 "d_t decreases at t = " + std::to_string(t));
      return report;
    }
  }

  // Non-negativity of all variables.
  const auto negative = [&](double x) { return x < -options.tolerance; };
  if (std::any_of(solution.x_tu.begin(), solution.x_tu.end(), negative) ||
      std::any_of(solution.x_tq.begin(), solution.x_tq.end(), negative)) {
    report.add("lp/negative-variable", "some x_tu or x_tQ is < 0");
  }

  // (10): each element's column sums to 1.
  for (int u = 0; u < universe; ++u) {
    double mass = 0.0;
    for (int t = 0; t < n; ++t) mass += solution.xu(t, u);
    if (std::abs(mass - 1.0) > options.tolerance) {
      report.add("lp/element-mass",
                 "sum_t x_tu for u = " + std::to_string(u) + " is " +
                     num(mass));
      break;
    }
  }
  // (11): each quorum's column sums to 1.
  for (int q = 0; q < quorums; ++q) {
    double mass = 0.0;
    for (int t = 0; t < n; ++t) mass += solution.xq(t, q);
    if (std::abs(mass - 1.0) > options.tolerance) {
      report.add("lp/quorum-mass",
                 "sum_t x_tQ for Q = " + std::to_string(q) + " is " +
                     num(mass));
      break;
    }
  }
  // (12)/(13): capacity of each (sorted) node row.
  const std::vector<double>& loads = instance.element_loads();
  for (int t = 0; t < n; ++t) {
    double used = 0.0;
    for (int u = 0; u < universe; ++u) {
      used += loads[static_cast<std::size_t>(u)] * solution.xu(t, u);
    }
    const double budget =
        options.load_scale *
        instance.capacity(solution.node_order[static_cast<std::size_t>(t)]);
    if (used > budget + options.tolerance) {
      report.add("lp/over-capacity",
                 "row t = " + std::to_string(t) + " uses " + num(used) +
                     " of budget " + num(budget));
      break;
    }
  }
  // (14): prefix of x_{.Q} dominated by prefix of x_{.u} for u in Q.
  bool dominance_ok = true;
  for (int q = 0; q < quorums && dominance_ok; ++q) {
    for (int u : instance.system().quorum(q)) {
      double quorum_prefix = 0.0;
      double element_prefix = 0.0;
      for (int t = 0; t + 1 < n; ++t) {
        quorum_prefix += solution.xq(t, q);
        element_prefix += solution.xu(t, u);
        if (quorum_prefix > element_prefix + options.tolerance) {
          report.add("lp/prefix-dominance",
                     "sum_{s<=t} x_sQ > sum_{s<=t} x_su at t = " +
                         std::to_string(t) + " for Q = " + std::to_string(q) +
                         ", u = " + std::to_string(u));
          dominance_ok = false;
          break;
        }
      }
      if (!dominance_ok) break;
    }
  }
  // (9): recorded objective equals sum_Q p(Q) D_Q.
  if (options.check_objective) {
    double objective = 0.0;
    for (int q = 0; q < quorums; ++q) {
      objective += solution.quorum_probability[static_cast<std::size_t>(q)] *
                   solution.quorum_distance(q);
    }
    if (std::abs(objective - solution.objective) >
        options.tolerance * std::max(1.0, std::abs(objective))) {
      report.add("lp/objective-mismatch",
                 "recorded " + num(solution.objective) + " vs recomputed " +
                     num(objective));
    }
  }
  return report;
}

}  // namespace qp::check
