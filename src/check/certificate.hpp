#pragma once

/// \file certificate.hpp
/// Certified-bounds checking: every approximation guarantee the solvers
/// report is re-derived from scratch and verified, so a benchmark or
/// deployment can self-certify its numbers instead of trusting the solver
/// that produced them.
///
/// The certified chains (beta = alpha / (alpha - 1)):
///  - Thm 3.7 (SSQPP): re-solve LP (9)-(14) to get Z*; then
///        Delta_f(v0) <= beta * Z*        and   Z* <= OPT_ssqpp,
///        load_f(v)   <= (alpha+1) cap(v).
///  - Thm 1.2 (QPP): with L = min_v0 [ Avg_v d(v, v0) + Z*(v0) ], the relay
///    lemma (Lemma 3.1) gives L <= 5 OPT, so L / 5 is a certified lower
///    bound on OPT and the checks
///        Avg_v Delta_f(v) <= beta * L    and   load <= (alpha+1) cap
///    machine-verify the 5 beta approximation. Deriving L solves one LP per
///    node; CertificateOptions::derive_opt_lower_bound turns it off for
///    large instances (the per-source Thm 3.7 chain is still checked).
///  - Thm 5.1 (total delay): re-derive the GAP LP optimum G; then
///        Avg_v Gamma_f(v) <= G <= OPT   and   load_f(v) <= 2 cap(v).
///  - Eq. (19) (Majority, Thm 1.3): the measured Delta_f(v0) equals the
///    closed form on the sorted slot distances, and the layout respects
///    capacities exactly.
///
/// Every certificate also re-checks reported numbers against recomputed
/// ones ("*/consistency" rows), so a corrupted result struct fails even
/// when the underlying placement is fine.

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/majority_layout.hpp"
#include "core/qpp_solver.hpp"
#include "core/ssqpp_solver.hpp"
#include "core/total_delay.hpp"

namespace qp::check {

/// One verified inequality value <= bound (+ tolerance).
struct BoundCheck {
  std::string name;    ///< e.g. "thm3.7/delay"
  double value = 0.0;  ///< measured / recomputed quantity
  double bound = 0.0;  ///< certified upper bound on it
  bool holds = false;
};

struct Certificate {
  std::vector<BoundCheck> checks;
  /// Certified lower bound on the optimum of the problem the result claims
  /// to approximate (0 when not derived).
  double opt_lower_bound = 0.0;
  /// Achieved objective / opt_lower_bound (0 when no lower bound).
  double certified_ratio = 0.0;

  bool ok() const;
  /// Tabular rendering, one check per line.
  std::string to_string() const;
  void add(std::string name, double value, double bound, double tolerance);
};

struct CertificateOptions {
  /// The alpha the result was solved with; bounds depend on it.
  double alpha = 2.0;
  /// Absolute + relative slack for floating-point comparisons.
  double tolerance = 1e-6;
  /// Thm 1.2 only: derive the OPT lower bound L / 5 (one LP per node).
  bool derive_opt_lower_bound = true;
  lp::SimplexOptions simplex;
};

/// Thm 3.7 certificate for a single-source result.
Certificate check_certificate(const core::SsqppInstance& instance,
                              const core::SsqppResult& result,
                              const CertificateOptions& options = {});

/// Thm 1.2 certificate for a full QPP result.
Certificate check_certificate(const core::QppInstance& instance,
                              const core::QppResult& result,
                              const CertificateOptions& options = {});

/// Thm 5.1 certificate for a total-delay result.
Certificate check_certificate(const core::QppInstance& instance,
                              const core::TotalDelayResult& result,
                              const CertificateOptions& options = {});

/// Eq. (19) certificate for a majority layout of a threshold-t system.
Certificate check_certificate(const core::SsqppInstance& instance,
                              const core::MajorityLayoutResult& result, int t,
                              const CertificateOptions& options = {});

}  // namespace qp::check
