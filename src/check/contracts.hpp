#pragma once

/// \file contracts.hpp
/// Runtime contract macros for the solver pipeline.
///
/// QP_REQUIRE states a precondition at an API boundary; QP_INVARIANT states
/// an internal invariant or postcondition. Both are fatal-with-context when
/// contracts are enabled and compile to nothing (operands unevaluated) when
/// they are not:
///
///  - Debug builds (no NDEBUG) enable contracts by default;
///  - Release/RelWithDebInfo builds compile them out;
///  - -DQPLACE_CONTRACTS=1 (CMake: QPLACE_FORCE_CONTRACTS=ON) forces them on
///    regardless of build type, which is what the sanitizer CI presets do.
///
/// On violation the failure handler prints the condition, location and
/// message to stderr and calls std::abort(), so sanitizers and death tests
/// observe a crash at the first broken invariant instead of a silently
/// corrupted bound. See docs/CONTRACTS.md for the invariant catalogue.

namespace qp::check {

/// Prints full context to stderr and aborts. Only called from the contract
/// macros; exposed so tests can reference the symbol.
[[noreturn]] void contract_failure(const char* kind, const char* condition,
                                   const char* file, int line,
                                   const char* function, const char* message);

}  // namespace qp::check

#if !defined(QPLACE_CONTRACTS)
#if defined(NDEBUG)
#define QPLACE_CONTRACTS 0
#else
#define QPLACE_CONTRACTS 1
#endif
#endif

#if QPLACE_CONTRACTS
#define QP_CONTRACT_IMPL(kind, condition, message)                     \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::qp::check::contract_failure(kind, #condition, __FILE__,        \
                                    __LINE__, __func__, message);      \
    }                                                                  \
  } while (false)
#else
// Unevaluated operand: keeps referenced variables "used" (no -Wunused in
// Release) without generating any code.
#define QP_CONTRACT_IMPL(kind, condition, message) \
  static_cast<void>(sizeof((condition) ? 1 : 0))
#endif

/// Precondition at an API boundary (caller error when it fires).
#define QP_REQUIRE(condition, message) \
  QP_CONTRACT_IMPL("REQUIRE", condition, message)

/// Internal invariant / postcondition (library bug when it fires).
#define QP_INVARIANT(condition, message) \
  QP_CONTRACT_IMPL("INVARIANT", condition, message)
