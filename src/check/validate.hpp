#pragma once

/// \file validate.hpp
/// Typed validators for the paper's data contracts. Each validator returns a
/// ValidationReport listing every violated invariant (empty report = valid)
/// rather than throwing on the first problem, so callers can log or assert
/// on the full picture. The contract macros (contracts.hpp) are the
/// fail-fast companion; these validators are the exhaustive, always-compiled
/// diagnosis tools used by `qplace check`, tests, and solver entry points.
///
/// Invariant catalogue (see docs/CONTRACTS.md for the paper mapping):
///  - metric:    symmetry, zero diagonal, non-negativity, finiteness,
///               triangle inequality (exhaustive for small n, sampled above
///               MetricCheckOptions::exhaustive_triangle_limit);
///  - instance:  capacities finite and >= 0, strategy a probability
///               distribution over the quorums, quorums nonempty subsets of
///               U, client weights normalized, element loads consistent
///               with (system, strategy) per paper Sec 1.2;
///  - placement: range f : U -> V, load accounting
///               load_f(v) = sum_{f(u)=v} load(u) <= factor * cap(v);
///  - LP:        primal feasibility of LP (9)-(14) and objective
///               consistency objective = sum_Q p(Q) sum_t d_t x_tQ.

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/ssqpp_lp.hpp"

namespace qp::check {

/// One violated invariant.
struct ValidationIssue {
  std::string code;    ///< stable id, e.g. "metric/asymmetric"
  std::string detail;  ///< human-readable specifics with offending indices
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;

  bool ok() const { return issues.empty(); }
  /// One issue per line: "code: detail". Empty string when ok().
  std::string to_string() const;
  void add(std::string code, std::string detail);
  void merge(const ValidationReport& other);
};

struct MetricCheckOptions {
  double tolerance = 1e-9;
  /// Up to this many points the triangle inequality is checked on all
  /// O(n^3) triples; above it, `triangle_samples` random triples are
  /// checked instead (deterministic given `seed`).
  int exhaustive_triangle_limit = 128;
  int triangle_samples = 20000;
  std::uint64_t seed = 7;
};

/// Symmetry, zero diagonal, non-negativity, finiteness and the triangle
/// inequality (paper Sec 1.2 assumes a metric).
ValidationReport validate_metric(const graph::Metric& metric,
                                 const MetricCheckOptions& options = {});

/// Raw access-strategy data against a system: one probability per quorum,
/// all non-negative and finite, summing to 1 within 1e-9 (paper Sec 1:
/// p : Q -> [0, 1] is a distribution). AccessStrategy's constructor
/// enforces this; the validator covers strategies arriving as raw data
/// (files, wire formats) before construction.
ValidationReport validate_strategy(const quorum::QuorumSystem& system,
                                   const std::vector<double>& probabilities);

/// Full QPP instance: metric, capacities, system/strategy coupling, client
/// weights and cached element loads.
ValidationReport validate_instance(const core::QppInstance& instance,
                                   const MetricCheckOptions& options = {});

/// Single-source instance: as above plus source in range.
ValidationReport validate_instance(const core::SsqppInstance& instance,
                                   const MetricCheckOptions& options = {});

struct PlacementCheckOptions {
  /// Allowed load_f(v) / cap(v). 1.0 demands capacity-respecting; the
  /// Thm 1.2 / 3.7 outputs are certified for factor alpha + 1.
  double max_load_factor = 1.0;
  double tolerance = 1e-9;
};

/// Range + load accounting of a placement against a QPP instance.
ValidationReport validate_placement(const core::QppInstance& instance,
                                    const core::Placement& placement,
                                    const PlacementCheckOptions& options = {});

/// Range + load accounting of a placement against a SSQPP instance.
ValidationReport validate_placement(const core::SsqppInstance& instance,
                                    const core::Placement& placement,
                                    const PlacementCheckOptions& options = {});

struct LpCheckOptions {
  double tolerance = 1e-7;
  /// Capacity rows are checked against load_scale * cap(v_t): 1.0 for raw
  /// LP solutions, alpha for alpha-filtered solutions (Sec 3.3.1 lets the
  /// filtered mass use alpha times the capacity).
  double load_scale = 1.0;
  /// Filtered solutions redistribute quorum mass, so their objective need
  /// not match sum_Q p(Q) D_Q of the *original* LP optimum; disable the
  /// objective consistency row when checking intermediate solutions whose
  /// recorded objective is stale.
  bool check_objective = true;
};

/// Primal feasibility of a FractionalSsqpp against LP (9)-(14): column
/// stochasticity (10)/(11), capacities (12)-(13), prefix dominance (14),
/// non-negativity, node ordering, and objective consistency (9).
ValidationReport validate_lp_solution(const core::SsqppInstance& instance,
                                      const core::FractionalSsqpp& solution,
                                      const LpCheckOptions& options = {});

}  // namespace qp::check
