#include "sim/fault_schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <random>
#include <sstream>
#include <stdexcept>

#include "check/contracts.hpp"
#include "obs/json.hpp"

namespace qp::sim {

namespace {

constexpr const char* kSchema = "qplace.faults.v1";

/// Half-open window membership, the single convention for every fault kind.
bool active(double from, double until, double t) {
  return t >= from && t < until;
}

void check_window(int node, double from, double until, const char* kind) {
  if (node < 0) {
    throw std::invalid_argument(std::string("FaultSchedule: ") + kind +
                                " window has a negative node id");
  }
  if (!(until >= from) || from < 0.0) {
    throw std::invalid_argument(std::string("FaultSchedule: ") + kind +
                                " window must satisfy 0 <= from <= until");
  }
}

void check_side(const std::vector<int>& side, const char* name) {
  if (side.empty()) {
    throw std::invalid_argument(
        std::string("FaultSchedule: partition side ") + name + " is empty");
  }
  for (std::size_t i = 0; i < side.size(); ++i) {
    if (side[i] < 0) {
      throw std::invalid_argument("FaultSchedule: partition node id < 0");
    }
    if (i > 0 && side[i] <= side[i - 1]) {
      throw std::invalid_argument(
          "FaultSchedule: partition sides must be sorted and duplicate-free");
    }
  }
}

bool contains(const std::vector<int>& sorted, int node) {
  return std::binary_search(sorted.begin(), sorted.end(), node);
}

void append_double(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void append_int(std::string& out, int value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", value);
  out += buf;
}

void append_side(std::string& out, const std::vector<int>& side) {
  out += "[";
  for (std::size_t i = 0; i < side.size(); ++i) {
    if (i > 0) out += ", ";
    append_int(out, side[i]);
  }
  out += "]";
}

double member(const obs::json::Value& value, const char* key,
              std::int64_t line_hint) {
  const obs::json::Value* m = value.find(key);
  if (m == nullptr || m->type != obs::json::Value::Type::kNumber) {
    throw std::runtime_error("fault schedule entry " +
                             std::to_string(line_hint) +
                             " misses numeric member '" + key + "'");
  }
  return m->number;
}

std::vector<int> int_array(const obs::json::Value& value, const char* key,
                           std::int64_t line_hint) {
  const obs::json::Value* m = value.find(key);
  if (m == nullptr || !m->is_array()) {
    throw std::runtime_error("fault schedule entry " +
                             std::to_string(line_hint) +
                             " misses array member '" + key + "'");
  }
  std::vector<int> out;
  out.reserve(m->array.size());
  for (const obs::json::Value& entry : m->array) {
    if (entry.type != obs::json::Value::Type::kNumber) {
      throw std::runtime_error("fault schedule entry " +
                               std::to_string(line_hint) +
                               " has a non-numeric node id in '" + key + "'");
    }
    out.push_back(static_cast<int>(entry.number));
  }
  return out;
}

}  // namespace

FaultSchedule::FaultSchedule(std::vector<CrashWindow> crashes,
                             std::vector<PartitionWindow> partitions,
                             std::vector<GrayWindow> gray)
    : crashes_(std::move(crashes)),
      partitions_(std::move(partitions)),
      gray_(std::move(gray)) {
  for (const CrashWindow& w : crashes_) {
    check_window(w.node, w.from, w.until, "crash");
    max_node_ = std::max(max_node_, w.node);
  }
  for (const PartitionWindow& w : partitions_) {
    check_window(0, w.from, w.until, "partition");
    check_side(w.side_a, "a");
    check_side(w.side_b, "b");
    for (const int node : w.side_a) {
      if (contains(w.side_b, node)) {
        throw std::invalid_argument(
            "FaultSchedule: partition sides must be disjoint");
      }
      max_node_ = std::max(max_node_, node);
    }
    for (const int node : w.side_b) max_node_ = std::max(max_node_, node);
  }
  for (const GrayWindow& w : gray_) {
    check_window(w.node, w.from, w.until, "gray");
    if (!(w.factor >= 1.0)) {
      throw std::invalid_argument(
          "FaultSchedule: gray factor must be >= 1");
    }
    max_node_ = std::max(max_node_, w.node);
  }
}

bool FaultSchedule::crashed(int node, double t) const {
  for (const CrashWindow& w : crashes_) {
    if (w.node == node && active(w.from, w.until, t)) return true;
  }
  return false;
}

bool FaultSchedule::partitioned(int a, int b, double t) const {
  for (const PartitionWindow& w : partitions_) {
    if (!active(w.from, w.until, t)) continue;
    if ((contains(w.side_a, a) && contains(w.side_b, b)) ||
        (contains(w.side_a, b) && contains(w.side_b, a))) {
      return true;
    }
  }
  return false;
}

double FaultSchedule::gray_factor(int node, double t) const {
  double factor = 1.0;
  for (const GrayWindow& w : gray_) {
    if (w.node == node && active(w.from, w.until, t)) factor *= w.factor;
  }
  return factor;
}

bool FaultSchedule::any_active(double from, double until) const {
  const auto overlaps = [&](double wf, double wu) {
    // Window [wf, wu) vs query [from, until].
    return wf <= until && from < wu;
  };
  for (const CrashWindow& w : crashes_) {
    if (overlaps(w.from, w.until)) return true;
  }
  for (const PartitionWindow& w : partitions_) {
    if (overlaps(w.from, w.until)) return true;
  }
  for (const GrayWindow& w : gray_) {
    if (overlaps(w.from, w.until)) return true;
  }
  return false;
}

std::vector<bool> FaultSchedule::failed_elements(
    const core::Placement& placement, int client, double t) const {
  std::vector<bool> failed(placement.size(), false);
  for (std::size_t u = 0; u < placement.size(); ++u) {
    const int node = placement[u];
    if (node < 0) {
      throw std::invalid_argument(
          "FaultSchedule::failed_elements: negative placement node");
    }
    failed[u] = crashed(node, t) || partitioned(client, node, t);
  }
  return failed;
}

FaultSchedule parse_fault_schedule(const std::string& text) {
  const obs::json::Value doc = obs::json::parse(text);
  if (!doc.is_object()) {
    throw std::runtime_error("fault schedule is not a JSON object");
  }
  const std::string schema = doc.get_string("schema", "");
  if (schema != kSchema) {
    throw std::runtime_error("fault schedule has schema '" + schema +
                             "', expected '" + kSchema + "'");
  }
  std::vector<CrashWindow> crashes;
  std::vector<PartitionWindow> partitions;
  std::vector<GrayWindow> gray;
  if (const obs::json::Value* list = doc.find("crashes")) {
    if (!list->is_array()) {
      throw std::runtime_error("fault schedule 'crashes' is not an array");
    }
    std::int64_t i = 0;
    for (const obs::json::Value& entry : list->array) {
      ++i;
      CrashWindow w;
      w.node = static_cast<int>(member(entry, "node", i));
      w.from = member(entry, "from", i);
      w.until = member(entry, "until", i);
      crashes.push_back(w);
    }
  }
  if (const obs::json::Value* list = doc.find("partitions")) {
    if (!list->is_array()) {
      throw std::runtime_error("fault schedule 'partitions' is not an array");
    }
    std::int64_t i = 0;
    for (const obs::json::Value& entry : list->array) {
      ++i;
      PartitionWindow w;
      w.side_a = int_array(entry, "a", i);
      w.side_b = int_array(entry, "b", i);
      w.from = member(entry, "from", i);
      w.until = member(entry, "until", i);
      partitions.push_back(std::move(w));
    }
  }
  if (const obs::json::Value* list = doc.find("gray")) {
    if (!list->is_array()) {
      throw std::runtime_error("fault schedule 'gray' is not an array");
    }
    std::int64_t i = 0;
    for (const obs::json::Value& entry : list->array) {
      ++i;
      GrayWindow w;
      w.node = static_cast<int>(member(entry, "node", i));
      w.from = member(entry, "from", i);
      w.until = member(entry, "until", i);
      w.factor = member(entry, "factor", i);
      gray.push_back(w);
    }
  }
  return FaultSchedule(std::move(crashes), std::move(partitions),
                       std::move(gray));
}

FaultSchedule load_fault_schedule(std::istream& in) {
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("fault schedule: read failed");
  }
  return parse_fault_schedule(text.str());
}

std::string render_fault_schedule(const FaultSchedule& schedule) {
  std::string out = "{\"schema\": \"";
  out += kSchema;
  out += "\", \"crashes\": [";
  for (std::size_t i = 0; i < schedule.crashes().size(); ++i) {
    const CrashWindow& w = schedule.crashes()[i];
    if (i > 0) out += ", ";
    out += "{\"node\": ";
    append_int(out, w.node);
    out += ", \"from\": ";
    append_double(out, w.from);
    out += ", \"until\": ";
    append_double(out, w.until);
    out += "}";
  }
  out += "], \"partitions\": [";
  for (std::size_t i = 0; i < schedule.partitions().size(); ++i) {
    const PartitionWindow& w = schedule.partitions()[i];
    if (i > 0) out += ", ";
    out += "{\"a\": ";
    append_side(out, w.side_a);
    out += ", \"b\": ";
    append_side(out, w.side_b);
    out += ", \"from\": ";
    append_double(out, w.from);
    out += ", \"until\": ";
    append_double(out, w.until);
    out += "}";
  }
  out += "], \"gray\": [";
  for (std::size_t i = 0; i < schedule.gray().size(); ++i) {
    const GrayWindow& w = schedule.gray()[i];
    if (i > 0) out += ", ";
    out += "{\"node\": ";
    append_int(out, w.node);
    out += ", \"from\": ";
    append_double(out, w.from);
    out += ", \"until\": ";
    append_double(out, w.until);
    out += ", \"factor\": ";
    append_double(out, w.factor);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string fault_schedule_digest(const FaultSchedule& schedule) {
  const std::string text = render_fault_schedule(schedule);
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV-1a prime
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

FaultSchedule random_fault_schedule(int num_nodes, double duration,
                                    const RandomFaultOptions& options,
                                    std::uint64_t seed) {
  if (num_nodes <= 0 || !(duration > 0.0)) {
    throw std::invalid_argument(
        "random_fault_schedule: num_nodes and duration must be positive");
  }
  if (options.crash_rate < 0.0 || options.partition_rate < 0.0 ||
      options.gray_rate < 0.0 || options.mean_downtime < 0.0 ||
      options.mean_partition_duration < 0.0 ||
      options.mean_gray_duration < 0.0) {
    throw std::invalid_argument(
        "random_fault_schedule: rates and durations must be non-negative");
  }
  if (!(options.gray_factor >= 1.0)) {
    throw std::invalid_argument(
        "random_fault_schedule: gray_factor must be >= 1");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> when(0.0, duration);
  const auto truncated = [&](double start, double mean) {
    std::exponential_distribution<double> length(1.0 / std::max(mean, 1e-9));
    return std::min(duration, start + (mean > 0.0 ? length(rng) : 0.0));
  };

  std::vector<CrashWindow> crashes;
  std::vector<PartitionWindow> partitions;
  std::vector<GrayWindow> gray;

  std::poisson_distribution<int> crash_count(options.crash_rate);
  for (int node = 0; node < num_nodes; ++node) {
    const int count = options.crash_rate > 0.0 ? crash_count(rng) : 0;
    for (int i = 0; i < count; ++i) {
      CrashWindow w;
      w.node = node;
      w.from = when(rng);
      w.until = truncated(w.from, options.mean_downtime);
      crashes.push_back(w);
    }
  }

  std::poisson_distribution<int> partition_count(options.partition_rate);
  const int partitions_drawn =
      options.partition_rate > 0.0 ? partition_count(rng) : 0;
  for (int i = 0; i < partitions_drawn && num_nodes >= 2; ++i) {
    // A random non-trivial cut of a seeded shuffle.
    std::vector<int> order(static_cast<std::size_t>(num_nodes));
    for (int v = 0; v < num_nodes; ++v) order[static_cast<std::size_t>(v)] = v;
    std::shuffle(order.begin(), order.end(), rng);
    std::uniform_int_distribution<int> cut(1, num_nodes - 1);
    const int split = cut(rng);
    PartitionWindow w;
    w.side_a.assign(order.begin(), order.begin() + split);
    w.side_b.assign(order.begin() + split, order.end());
    std::sort(w.side_a.begin(), w.side_a.end());
    std::sort(w.side_b.begin(), w.side_b.end());
    w.from = when(rng);
    w.until = truncated(w.from, options.mean_partition_duration);
    partitions.push_back(std::move(w));
  }

  std::poisson_distribution<int> gray_count(options.gray_rate);
  for (int node = 0; node < num_nodes; ++node) {
    const int count = options.gray_rate > 0.0 ? gray_count(rng) : 0;
    for (int i = 0; i < count; ++i) {
      GrayWindow w;
      w.node = node;
      w.from = when(rng);
      w.until = truncated(w.from, options.mean_gray_duration);
      w.factor = options.gray_factor;
      gray.push_back(w);
    }
  }

  FaultSchedule schedule(std::move(crashes), std::move(partitions),
                         std::move(gray));
  QP_INVARIANT(schedule.max_node() < num_nodes,
               "random_fault_schedule: generated node id out of range");
  return schedule;
}

}  // namespace qp::sim
