#pragma once

/// \file simulator.hpp
/// Discrete-event simulation of quorum accesses over a network.
///
/// The paper models the cost of a quorum access analytically: max-delay
/// delta_f(v, Q) for parallel probing, total-delay gamma_f(v, Q) for
/// sequential probing, and per-node load load_f(v). This simulator executes
/// the same system at message level so those formulas can be validated
/// empirically and extended with effects the analysis abstracts away
/// (queueing at overloaded nodes):
///
///  - each client issues accesses as a Poisson process, picking a quorum
///    from the access strategy each time;
///  - a probe to element u travels one-way d(client, f(u)) time units to
///    its node, waits in the node's FIFO queue, and occupies the node for
///    `1 / service_rate` time units of service;
///  - parallel mode: all probes launch at once; the access completes when
///    the last probe finishes service (paper eq. (1) when service is free);
///  - sequential mode: probes launch one after another, each when the
///    previous finishes (paper's total-delay when service is free).
///
/// With service_rate = infinity the measured mean access delay of client v
/// converges to Delta_f(v) (parallel) / Gamma_f(v) (sequential), and each
/// node's probe share converges to load_f(v); tests and the E9 experiment
/// check exactly this.
///
/// Fault injection (docs/SIMULATION.md): with a FaultSchedule attached the
/// engine becomes a fault-aware quorum-access simulator. Every attempt has
/// a deadline of `probe_timeout` after its launch; probes dropped by
/// crashes/partitions (or slowed past the deadline by gray windows) make
/// the attempt time out, after which the client waits a bounded
/// exponential backoff and *re-selects*: the highest-preference quorum
/// that is live per quorum::check_liveness (preference = strategy
/// probability descending under kStrategy, delta_f(v, .) ascending under
/// kNearestQuorum; untried quorums first). After `max_attempts` timed-out
/// attempts the access fails with outcome kTimeout; when no live quorum
/// exists at re-selection it fails immediately with kUnavailable. All of
/// it is deterministic in (instance, placement, config, schedule): retry
/// decisions draw no randomness, so fault runs replay byte-for-byte.

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "core/instance.hpp"
#include "obs/access_log.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "sim/fault_schedule.hpp"

namespace qp::sim {

enum class AccessMode {
  kParallel,    ///< max-delay semantics (paper eq. (1))
  kSequential,  ///< total-delay semantics (paper Sec 5)
};

enum class SelectionPolicy {
  /// Draw each access's quorum from the access strategy (the paper's
  /// model; preserves the engineered load profile).
  kStrategy,
  /// Always use the quorum minimizing delta_f(v, .) for the client -- the
  /// Sec 2 related-work objective (Fu/Kobayashi/Lin). Minimizes latency but
  /// concentrates load; the E12 experiment quantifies the trade-off.
  kNearestQuorum,
};

struct SimulationConfig {
  double arrival_rate_per_client = 1.0;  ///< Poisson rate of quorum accesses
  double duration = 1000.0;              ///< simulated time horizon
  AccessMode mode = AccessMode::kParallel;
  SelectionPolicy selection = SelectionPolicy::kStrategy;
  /// Probes per unit time a node can serve; <= 0 means infinite (no
  /// queueing, the paper's pure-latency model).
  double service_rate = 0.0;
  std::uint64_t seed = 1;
  /// Warm-up period excluded from statistics. Applies uniformly: accesses
  /// starting before `warmup` are excluded from the means AND from the
  /// latency histograms, and probes reaching a node before `warmup` are
  /// excluded from access shares and the queue-wait histogram. Must satisfy
  /// 0 <= warmup < duration (enforced: std::invalid_argument otherwise,
  /// backed by a QP_REQUIRE contract).
  double warmup = 0.0;
  /// Per-probe latency jitter: each probe's network delay is the metric
  /// distance times Uniform(1 - jitter, 1 + jitter). Zero reproduces the
  /// paper's deterministic model exactly. Note that jitter is mean-
  /// preserving per probe but BIASES the parallel (max) access delay
  /// upward -- E9 quantifies this gap between model and network reality.
  double latency_jitter = 0.0;
  /// When >= 0, accesses are routed via this relay node, the Thm 1.2 /
  /// Lemma 3.1 access model (paper eq. (4)): every probe's path is
  /// d(client, relay) + d(relay, node), so with infinite service and zero
  /// jitter a parallel access costs exactly d(v, v0) + delta_f(v0, Q) and
  /// the mean converges to Avg_v d(v, v0) + Delta_f(v0) (paper eq. (8),
  /// core::relay_delay). -1 (default) probes directly from the client.
  /// Must be a valid node id when set (std::invalid_argument otherwise).
  int relay_node = -1;
  /// Optional per-access event log (docs/OBSERVABILITY.md, schema
  /// qplace.access_log.v2). Not owned; may be nullptr. The simulator
  /// records every resolved post-warmup access (completed and, under
  /// faults, failed) and the writer's sampling decides what is kept. The
  /// caller closes the writer after simulate() returns.
  obs::AccessLogWriter* access_log = nullptr;
  /// Optional fault schedule (docs/SIMULATION.md). Not owned; nullptr
  /// reproduces the paper's failure-free model. When set, probe_timeout
  /// must be positive (a dropped probe would otherwise hang its access
  /// forever) and every referenced node id must exist.
  const FaultSchedule* faults = nullptr;
  /// Attempt deadline: an attempt whose probes have not all replied within
  /// `probe_timeout` of its launch times out and is retried. <= 0 disables
  /// timeouts (only valid without a fault schedule). Applies to both
  /// modes; in sequential mode the deadline covers the whole probe chain.
  double probe_timeout = 0.0;
  /// Attempts per access (K >= 1). The access fails with outcome kTimeout
  /// after K timed-out attempts.
  int max_attempts = 3;
  /// Bounded exponential backoff before retry k (k = 2..K): the client
  /// waits min(retry_backoff * 2^(k-2), retry_backoff_cap) after the
  /// timeout before re-selecting. retry_backoff_cap <= 0 means uncapped.
  double retry_backoff = 0.5;
  double retry_backoff_cap = 8.0;
  /// Bucket width of the availability time series (fraction of accesses
  /// starting in each [warmup + i*w, warmup + (i+1)*w) bucket that
  /// succeeded; buckets with no resolved access report 1). <= 0 disables
  /// the series.
  double availability_bucket = 0.0;
  /// Optional live telemetry sink (docs/OBSERVABILITY.md §8). Not owned;
  /// with telemetry_interval > 0 the simulator samples it at every crossed
  /// multiple of the interval in *simulated* time (the sample at boundary b
  /// reflects exactly the events with time <= b -- the event loop is
  /// sequential, so the sequence of samples is deterministic in (instance,
  /// placement, config) regardless of thread count) plus a final sample at
  /// the horizon. The simulator watches its access-delay / queue-wait
  /// histograms ("sim.access_delay", "sim.queue_wait") for the duration of
  /// the run and unregisters them before returning.
  obs::MetricsSnapshotter* telemetry = nullptr;
  double telemetry_interval = 0.0;
  /// Optional progress callback, fired on its own sim-time grid (same
  /// boundary semantics as telemetry) plus once at the horizon. Runs on the
  /// simulation thread; keep it cheap (the CLI wires
  /// obs::ProgressMeter::update here for --progress).
  std::function<void(const obs::ProgressStats&)> on_progress;
  double progress_interval = 0.0;
};

struct SimulationResult {
  std::int64_t completed_accesses = 0;
  double overall_mean_delay = 0.0;
  std::vector<double> per_client_mean_delay;   ///< indexed by client
  std::vector<std::int64_t> per_client_count;  ///< accesses measured
  /// Fraction of all accesses that touched node v (expectation under the
  /// strategy: load_f(v)).
  std::vector<double> per_node_access_share;
  /// Node busy-time / simulated duration (only meaningful with finite
  /// service rate; this is the node's busy fraction).
  std::vector<double> per_node_utilization;
  /// Distribution of per-access delay over the measured (post-warmup)
  /// accesses -- the same population as overall_mean_delay. Quantiles via
  /// access_delay.quantile(q); log-bucketed, so merge/compare is
  /// deterministic (see obs/histogram.hpp and docs/OBSERVABILITY.md).
  obs::LogHistogram access_delay;
  /// Distribution of per-probe queue wait (service start minus arrival at
  /// the node) over post-warmup probes. Empty unless service_rate > 0.
  obs::LogHistogram queue_wait;
  /// Time-weighted mean number of probes at each node (waiting + in
  /// service), averaged over the full duration. Zero without queueing.
  std::vector<double> per_node_mean_queue_depth;
  /// Peak number of probes simultaneously at each node.
  std::vector<std::int64_t> per_node_max_queue_depth;

  // Fault-injection outcomes (all zero / 1.0 / empty on failure-free runs;
  // measured post-warmup population, like every statistic above).
  /// Accesses that resolved unsuccessfully (timeout-exhausted or
  /// unavailable).
  std::int64_t failed_accesses = 0;
  /// Subset of failed_accesses that found no live quorum at re-selection.
  std::int64_t unavailable_accesses = 0;
  /// Attempts that hit their deadline (a failed access contributes up to
  /// max_attempts of these; a retried-then-successful one at least 1).
  std::int64_t timed_out_attempts = 0;
  /// Attempts beyond each access's first (sum of attempts - 1).
  std::int64_t retries = 0;
  /// completed / (completed + failed); 1.0 when nothing resolved.
  double availability = 1.0;
  /// Per-bucket availability when config.availability_bucket > 0 (see
  /// there); also appended to the obs series "sim.availability".
  std::vector<double> availability_series;
  /// False iff some re-selection saw a pair of live quorums that do not
  /// intersect (possible only for non-intersecting families, e.g. combined
  /// read/write systems; see quorum::check_liveness).
  bool safety_ok = true;
};

/// Runs the simulation for a placement of the instance's quorum system.
/// Clients are all nodes; client v's arrival rate is scaled by the
/// instance's (normalized) client weight times num_nodes, so uniform
/// weights give every client the configured rate.
/// \throws std::invalid_argument on an invalid placement or non-positive
///         duration/arrival rate.
SimulationResult simulate(const core::QppInstance& instance,
                          const core::Placement& placement,
                          const SimulationConfig& config);

}  // namespace qp::sim
