#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <queue>
#include <stdexcept>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "core/evaluators.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "quorum/intersection.hpp"

namespace qp::sim {

namespace {

enum class EventType {
  kArrival,
  kProbeArrive,
  kProbeDone,
  /// Attempt deadline (launch + probe_timeout) for the access's attempt
  /// carried in Event::attempt; stale once the access resolved or retried.
  kTimeout,
  /// Backoff expired: re-select a quorum and launch the next attempt.
  kRetry,
};

struct Event {
  double time = 0.0;
  EventType type = EventType::kArrival;
  /// kArrival: the client issuing an access; kProbeArrive: the node the
  /// probe reaches; kProbeDone: the node that served the probe under
  /// queueing (-1 without queueing, where no node state is tracked).
  int where = 0;
  std::int64_t access = 0;  ///< the access a probe belongs to
  /// Index of the probe within its access's quorum; -1 for kArrival. Routes
  /// per-probe queue waits into the access log record.
  int probe = -1;
  /// Attempt number the event belongs to; probe/timeout events from a
  /// superseded attempt are discarded as stale.
  int attempt = 1;

  bool operator>(const Event& other) const { return time > other.time; }
};

struct Access {
  int client = 0;
  int quorum = 0;  ///< current attempt's quorum
  double start = 0.0;
  double attempt_start = 0.0;  ///< launch time of the current attempt
  int next_element_index = 0;  ///< sequential mode: next probe to launch
  int outstanding = 0;         ///< probes of the current attempt not done
  int attempt = 1;             ///< current attempt number
  bool resolved = false;       ///< completed or failed
  std::vector<int> tried;      ///< quorum indices attempted so far
};

}  // namespace

SimulationResult simulate(const core::QppInstance& instance,
                          const core::Placement& placement,
                          const SimulationConfig& config) {
  QP_REQUIRE(check::validate_instance(instance).ok(),
             "simulation instance violates its data contracts; see "
             "check::validate_instance");
  const int n = instance.num_nodes();
  if (!core::is_valid_placement(placement, instance.system().universe_size(),
                                n)) {
    throw std::invalid_argument("simulate: invalid placement");
  }
  if (!(config.duration > 0.0) || !(config.arrival_rate_per_client > 0.0)) {
    throw std::invalid_argument(
        "simulate: duration and arrival rate must be positive");
  }
  if (config.warmup < 0.0 || config.warmup >= config.duration) {
    throw std::invalid_argument("simulate: warmup must lie in [0, duration)");
  }
  if (config.latency_jitter < 0.0 || config.latency_jitter >= 1.0) {
    throw std::invalid_argument("simulate: latency_jitter must lie in [0, 1)");
  }
  if (config.relay_node >= n) {
    throw std::invalid_argument("simulate: relay_node out of range");
  }
  if (config.probe_timeout < 0.0 || config.max_attempts < 1 ||
      config.retry_backoff < 0.0) {
    throw std::invalid_argument(
        "simulate: probe_timeout and retry_backoff must be non-negative "
        "and max_attempts >= 1");
  }
  const FaultSchedule* faults = config.faults;
  if (faults != nullptr && faults->empty()) faults = nullptr;
  if (faults != nullptr) {
    if (!(config.probe_timeout > 0.0)) {
      throw std::invalid_argument(
          "simulate: fault injection requires probe_timeout > 0 (a dropped "
          "probe would otherwise hang its access forever)");
    }
    if (faults->max_node() >= n) {
      throw std::invalid_argument(
          "simulate: fault schedule references a node outside the instance");
    }
  }
  const int relay = config.relay_node < 0 ? -1 : config.relay_node;
  // Contract restatement of the throw above: a measurement window of zero
  // (or negative) length would make every statistic below vacuous.
  QP_REQUIRE(config.duration > config.warmup,
             "simulate: the measurement window (duration - warmup) must be "
             "positive");
  QP_SPAN("sim.simulate");

  std::mt19937_64 rng(config.seed);
  std::discrete_distribution<int> quorum_picker(
      instance.strategy().probabilities().begin(),
      instance.strategy().probabilities().end());

  const int num_quorums = instance.system().num_quorums();

  // Nearest-quorum policy: the chosen quorum per client is fixed by the
  // placement, so precompute it.
  std::vector<int> nearest_quorum(static_cast<std::size_t>(n), 0);
  if (config.selection == SelectionPolicy::kNearestQuorum) {
    for (int v = 0; v < n; ++v) {
      double best = std::numeric_limits<double>::infinity();
      for (int q = 0; q < num_quorums; ++q) {
        const double d = core::max_delay(instance.metric(),
                                         instance.system().quorum(q),
                                         placement, v);
        if (d < best) {
          best = d;
          nearest_quorum[static_cast<std::size_t>(v)] = q;
        }
      }
    }
  }

  // Re-selection preference order (docs/SIMULATION.md): retries draw no
  // randomness. Under kStrategy the fallback order is strategy probability
  // descending (ties: lower index); under kNearestQuorum it is
  // delta_f(v, .) ascending per client (ties: lower index).
  const bool timeouts_enabled = config.probe_timeout > 0.0;
  std::vector<int> strategy_preference;
  std::vector<std::vector<int>> nearest_preference;
  if (timeouts_enabled) {
    if (config.selection == SelectionPolicy::kStrategy) {
      strategy_preference.resize(static_cast<std::size_t>(num_quorums));
      for (int q = 0; q < num_quorums; ++q) {
        strategy_preference[static_cast<std::size_t>(q)] = q;
      }
      std::stable_sort(strategy_preference.begin(), strategy_preference.end(),
                       [&](int a, int b) {
                         return instance.strategy().probability(a) >
                                instance.strategy().probability(b);
                       });
    } else {
      nearest_preference.assign(static_cast<std::size_t>(n), {});
      for (int v = 0; v < n; ++v) {
        std::vector<double> delta(static_cast<std::size_t>(num_quorums), 0.0);
        auto& order = nearest_preference[static_cast<std::size_t>(v)];
        order.resize(static_cast<std::size_t>(num_quorums));
        for (int q = 0; q < num_quorums; ++q) {
          delta[static_cast<std::size_t>(q)] =
              core::max_delay(instance.metric(), instance.system().quorum(q),
                              placement, v);
          order[static_cast<std::size_t>(q)] = q;
        }
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
          return delta[static_cast<std::size_t>(a)] <
                 delta[static_cast<std::size_t>(b)];
        });
      }
    }
  }

  const bool queueing = config.service_rate > 0.0;
  const double service_time = queueing ? 1.0 / config.service_rate : 0.0;

  // Per-client Poisson arrival rates (weights are normalized to sum 1, so
  // uniform weights reproduce the configured per-client rate).
  std::vector<double> rate(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    rate[static_cast<std::size_t>(v)] =
        config.arrival_rate_per_client * n *
        instance.client_weights()[static_cast<std::size_t>(v)];
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  for (int v = 0; v < n; ++v) {
    if (rate[static_cast<std::size_t>(v)] <= 0.0) continue;
    std::exponential_distribution<double> gap(rate[static_cast<std::size_t>(v)]);
    queue.push({gap(rng), EventType::kArrival, v, 0});
  }

  std::vector<Access> accesses;
  // Per-access event log records, parallel to `accesses`. Only populated
  // for measured (post-warmup) accesses that pass the writer's sampling
  // filter; an empty probes vector marks "not logged" (quorums are
  // non-empty by construction).
  obs::AccessLogWriter* logger = config.access_log;
  std::vector<obs::AccessRecord> records;
  const auto logged = [&](std::int64_t id) {
    return logger != nullptr &&
           !records[static_cast<std::size_t>(id)].probes.empty();
  };
  std::vector<double> node_free(static_cast<std::size_t>(n), 0.0);
  std::vector<double> node_busy(static_cast<std::size_t>(n), 0.0);
  std::vector<double> node_probe_count(static_cast<std::size_t>(n), 0.0);

  SimulationResult result;
  result.per_client_mean_delay.assign(static_cast<std::size_t>(n), 0.0);
  result.per_client_count.assign(static_cast<std::size_t>(n), 0);
  result.per_node_access_share.assign(static_cast<std::size_t>(n), 0.0);
  result.per_node_utilization.assign(static_cast<std::size_t>(n), 0.0);
  result.per_node_mean_queue_depth.assign(static_cast<std::size_t>(n), 0.0);
  result.per_node_max_queue_depth.assign(static_cast<std::size_t>(n), 0);

  // Time-weighted queue-depth tracking (probes waiting or in service at a
  // node). Only maintained under queueing; without it probes never contend.
  std::vector<std::int64_t> node_depth(static_cast<std::size_t>(n), 0);
  std::vector<double> depth_area(static_cast<std::size_t>(n), 0.0);
  std::vector<double> depth_since(static_cast<std::size_t>(n), 0.0);
  const auto change_depth = [&](int node, double now, std::int64_t delta) {
    const auto v = static_cast<std::size_t>(node);
    depth_area[v] += static_cast<double>(node_depth[v]) * (now - depth_since[v]);
    depth_since[v] = now;
    node_depth[v] += delta;
    result.per_node_max_queue_depth[v] =
        std::max(result.per_node_max_queue_depth[v], node_depth[v]);
  };

  std::int64_t measured_accesses = 0;
  double measured_total_accesses = 0.0;  // incl. clients with 0 weight
  double total_delay_sum = 0.0;

  // Availability time series: per-bucket success fraction over access
  // start times in the measured window.
  const double bucket_width = config.availability_bucket;
  const int num_buckets =
      bucket_width > 0.0
          ? static_cast<int>(
                std::ceil((config.duration - config.warmup) / bucket_width))
          : 0;
  std::vector<std::int64_t> bucket_total(static_cast<std::size_t>(
                                             std::max(num_buckets, 0)),
                                         0);
  std::vector<std::int64_t> bucket_ok(bucket_total.size(), 0);
  const auto bucket_count = [&](double start, bool ok) {
    if (num_buckets <= 0 || start < config.warmup) return;
    const auto idx = static_cast<std::size_t>(std::min<double>(
        num_buckets - 1, std::floor((start - config.warmup) / bucket_width)));
    ++bucket_total[idx];
    if (ok) ++bucket_ok[idx];
  };

  // ---- live telemetry / progress / span tracing (docs/OBSERVABILITY.md §8)
  //
  // Counters update incrementally at the event sites below, so a mid-run
  // telemetry sample or /metrics scrape sees live totals; the zero-adds
  // here register every instrument up front so the counter *set* of a run
  // report never depends on which events a particular run encountered.
  // Totals are a pure function of (instance, placement, config) -- the
  // event loop is sequential -- so they satisfy the determinism contract.
  QP_COUNTER_ADD("sim.runs", 1);
  QP_COUNTER_ADD("sim.completed_accesses", 0);
  QP_COUNTER_ADD("sim.retries", 0);
  QP_COUNTER_ADD("sim.timeouts", 0);
  QP_COUNTER_ADD("sim.failed_accesses", 0);
  QP_COUNTER_ADD("sim.unavailable_accesses", 0);
  QP_COUNTER_ADD("sim.measured_probes", 0);
  if (logger != nullptr) QP_COUNTER_ADD("sim.logged_accesses", 0);

  obs::MetricsSnapshotter* telemetry =
      config.telemetry_interval > 0.0 ? config.telemetry : nullptr;
  if (telemetry != nullptr) {
    telemetry->watch_histogram("sim.access_delay", &result.access_delay);
    telemetry->watch_histogram("sim.queue_wait", &result.queue_wait);
  }
  const bool progress_on =
      static_cast<bool>(config.on_progress) && config.progress_interval > 0.0;
  const auto take_sample = [&](double t) {
    const std::int64_t resolved = measured_accesses + result.failed_accesses;
    telemetry->sample(
        t, {{"sim.availability",
             resolved > 0 ? static_cast<double>(measured_accesses) /
                                static_cast<double>(resolved)
                          : 1.0}});
  };
  const auto report_progress = [&](double t) {
    obs::ProgressStats stats;
    stats.sim_time = t;
    stats.duration = config.duration;
    stats.completed = measured_accesses;
    stats.failed = result.failed_accesses;
    stats.resolved = stats.completed + stats.failed;
    stats.availability =
        stats.resolved > 0 ? static_cast<double>(stats.completed) /
                                 static_cast<double>(stats.resolved)
                           : 1.0;
    stats.p99 = result.access_delay.count() > 0
                    ? result.access_delay.quantile(0.99)
                    : std::numeric_limits<double>::quiet_NaN();
    config.on_progress(stats);
  };
  // Grid semantics: boundary b fires when the next event's time exceeds b,
  // i.e. the sample/tick at b reflects exactly the events with time <= b.
  double next_sample = telemetry != nullptr
                           ? config.telemetry_interval
                           : std::numeric_limits<double>::infinity();
  double next_progress = progress_on
                             ? config.progress_interval
                             : std::numeric_limits<double>::infinity();
  const auto advance_time = [&](double now) {
    while (next_sample < now) {
      take_sample(next_sample);
      next_sample += config.telemetry_interval;
    }
    while (next_progress < now) {
      report_progress(next_progress);
      next_progress += config.progress_interval;
    }
  };

  // Causal span trees (docs/OBSERVABILITY.md §8): when tracing is on, every
  // access emits a parent "sim.access" span with child spans per attempt /
  // probe / backoff / re-selection, in the sim-time pid domain with JSON
  // args, so `qplace analyze --trace` can reconcile the span arithmetic
  // with the access log.
  obs::TraceRecorder& trace = obs::TraceRecorder::instance();
  const bool tracing = trace.enabled();
  const auto sim_span = [&](const char* name, double from, double to,
                            const char* args) {
    constexpr double kScale = obs::TraceRecorder::kSimTimeScaleUs;
    trace.record_sim_span(name, from * kScale, (to - from) * kScale, args);
  };

  // Launches the probe for element index `idx` of the access's quorum at
  // time `when`: the probe reaches its node after the metric distance
  // (routed through the relay when configured), scaled by jitter and any
  // active gray window, then (with queueing) waits for the node's FIFO
  // queue. Returns the event to schedule next (kProbeArrive under queueing
  // so that service is granted in true arrival order, kProbeDone
  // otherwise), or nothing when the probe is dropped: partitions drop
  // probes *sent* while active (checked against the client->node pair, so
  // relay routing does not circumvent them), crashes drop probes *arriving*
  // while the node is down.
  std::uniform_real_distribution<double> jitter(1.0 - config.latency_jitter,
                                                1.0 + config.latency_jitter);
  const auto launch_probe =
      [&](const Access& access, std::int64_t id, int idx,
          double when) -> std::optional<Event> {
    const quorum::Quorum& q = instance.system().quorum(access.quorum);
    const int element = q[static_cast<std::size_t>(idx)];
    const int node = placement[static_cast<std::size_t>(element)];
    const double factor = config.latency_jitter > 0.0 ? jitter(rng) : 1.0;
    const double gray =
        faults != nullptr ? faults->gray_factor(node, when) : 1.0;
    const double path =
        relay >= 0 ? instance.metric()(access.client, relay) +
                         instance.metric()(relay, node)
                   : instance.metric()(access.client, node);
    const double arrive = when + factor * gray * path;
    const bool delivered =
        faults == nullptr || (!faults->partitioned(access.client, node, when) &&
                              !faults->crashed(node, arrive));
    if (delivered && when >= config.warmup) {
      node_probe_count[static_cast<std::size_t>(node)] += 1.0;
      QP_COUNTER_ADD("sim.measured_probes", 1);
    }
    if (logger != nullptr && logged(id)) {
      obs::AccessProbe& probe =
          records[static_cast<std::size_t>(id)]
              .probes[static_cast<std::size_t>(idx)];
      probe.element = element;
      probe.node = node;
      probe.net_delay = delivered ? arrive - when : -1.0;
    }
    if (tracing) {
      char args[160];
      std::snprintf(args, sizeof(args),
                    "{\"id\": %lld, \"attempt\": %d, \"probe\": %d, "
                    "\"element\": %d, \"node\": %d, \"dropped\": %s}",
                    static_cast<long long>(id), access.attempt, idx, element,
                    node, delivered ? "false" : "true");
      sim_span("sim.probe", when, delivered ? arrive : when, args);
    }
    if (!delivered) return std::nullopt;
    if (queueing) {
      return Event{arrive, EventType::kProbeArrive, node, id, idx,
                   access.attempt};
    }
    return Event{arrive, EventType::kProbeDone, -1, id, idx, access.attempt};
  };

  // Launches the current attempt of `id` at time `now`: resets the log
  // record to the attempt's quorum, fires the probes (all at once in
  // parallel mode, the first in sequential mode) and arms the deadline.
  const auto launch_attempt = [&](std::int64_t id, double now) {
    Access& access = accesses[static_cast<std::size_t>(id)];
    const quorum::Quorum& q = instance.system().quorum(access.quorum);
    access.attempt_start = now;
    access.outstanding = static_cast<int>(q.size());
    if (logger != nullptr && logged(id)) {
      obs::AccessRecord& record = records[static_cast<std::size_t>(id)];
      record.quorum = access.quorum;
      record.probes.assign(q.size(), obs::AccessProbe{});
    }
    if (config.mode == AccessMode::kParallel) {
      for (int idx = 0; idx < static_cast<int>(q.size()); ++idx) {
        if (auto event = launch_probe(access, id, idx, now)) {
          queue.push(*event);
        }
      }
    } else {
      access.next_element_index = 1;
      if (auto event = launch_probe(access, id, 0, now)) {
        queue.push(*event);
      }
    }
    if (timeouts_enabled) {
      queue.push({now + config.probe_timeout, EventType::kTimeout,
                  access.client, id, -1, access.attempt});
    }
  };

  // Failure-aware re-selection at time `now`: the highest-preference
  // quorum that quorum::check_liveness certifies live from the client's
  // perspective, favoring quorums this access has not tried yet; -1 when
  // none is live (the access is unavailable).
  const auto select_quorum = [&](const Access& access, double now) -> int {
    const std::vector<bool> failed =
        faults != nullptr
            ? faults->failed_elements(placement, access.client, now)
            : std::vector<bool>(
                  static_cast<std::size_t>(
                      instance.system().universe_size()),
                  false);
    const quorum::LivenessReport report =
        quorum::check_liveness(instance.system(), failed);
    result.safety_ok = result.safety_ok && report.safe();
    if (!report.available()) return -1;
    std::vector<bool> live(static_cast<std::size_t>(num_quorums), false);
    for (const int q : report.live_quorums) {
      live[static_cast<std::size_t>(q)] = true;
    }
    const std::vector<int>& preference =
        config.selection == SelectionPolicy::kStrategy
            ? strategy_preference
            : nearest_preference[static_cast<std::size_t>(access.client)];
    int fallback = -1;
    for (const int q : preference) {
      if (!live[static_cast<std::size_t>(q)]) continue;
      if (fallback < 0) fallback = q;
      if (std::find(access.tried.begin(), access.tried.end(), q) ==
          access.tried.end()) {
        return q;
      }
    }
    return fallback;  // every live quorum tried already: reuse the best
  };

  const auto finish_record = [&](std::int64_t id, double now,
                                 obs::AccessOutcome outcome) {
    if (logger == nullptr || !logged(id)) return;
    obs::AccessRecord& record = records[static_cast<std::size_t>(id)];
    const Access& access = accesses[static_cast<std::size_t>(id)];
    record.finish = now;
    record.attempts = static_cast<int>(access.tried.size());
    record.outcome = outcome;
    logger->record(std::move(record));
    QP_COUNTER_ADD("sim.logged_accesses", 1);
    // Leave a moved-from empty record behind; logged() is false for it
    // from now on, which is correct -- the access is resolved.
  };

  const auto fail_access = [&](std::int64_t id, double now,
                               obs::AccessOutcome outcome) {
    Access& access = accesses[static_cast<std::size_t>(id)];
    access.resolved = true;
    if (access.start >= config.warmup) {
      ++result.failed_accesses;
      QP_COUNTER_ADD("sim.failed_accesses", 1);
      if (outcome == obs::AccessOutcome::kUnavailable) {
        ++result.unavailable_accesses;
        QP_COUNTER_ADD("sim.unavailable_accesses", 1);
      }
      bucket_count(access.start, false);
    }
    if (tracing) {
      char args[160];
      std::snprintf(args, sizeof(args),
                    "{\"id\": %lld, \"client\": %d, \"quorum\": %d, "
                    "\"attempts\": %d, \"outcome\": \"%s\"}",
                    static_cast<long long>(id), access.client, access.quorum,
                    static_cast<int>(access.tried.size()),
                    obs::access_outcome_name(outcome).c_str());
      sim_span("sim.access", access.start, now, args);
    }
    finish_record(id, now, outcome);
  };

  // Bounded exponential backoff after the k-th timed-out attempt
  // (k = 1-based): base * 2^(k-1), capped.
  const auto backoff = [&](int attempts_failed) {
    double wait =
        std::ldexp(config.retry_backoff, std::max(attempts_failed - 1, 0));
    if (config.retry_backoff_cap > 0.0) {
      wait = std::min(wait, config.retry_backoff_cap);
    }
    return wait;
  };

  while (!queue.empty() && queue.top().time <= config.duration) {
    const Event event = queue.top();
    queue.pop();
    advance_time(event.time);

    if (event.type == EventType::kArrival) {
      // Schedule this client's next access.
      std::exponential_distribution<double> gap(
          rate[static_cast<std::size_t>(event.where)]);
      queue.push({event.time + gap(rng), EventType::kArrival, event.where, 0});

      Access access;
      access.client = event.where;
      // The first attempt follows the paper's model (a strategy draw, or
      // the fixed nearest quorum) with no liveness knowledge: the client
      // only learns of failures through timeouts.
      access.quorum = config.selection == SelectionPolicy::kNearestQuorum
                          ? nearest_quorum[static_cast<std::size_t>(event.where)]
                          : quorum_picker(rng);
      access.start = event.time;
      access.tried.push_back(access.quorum);
      const auto& q = instance.system().quorum(access.quorum);
      const auto id = static_cast<std::int64_t>(accesses.size());
      if (access.start >= config.warmup) measured_total_accesses += 1.0;
      if (logger != nullptr) {
        records.emplace_back();
        if (access.start >= config.warmup && logger->sampled(id)) {
          obs::AccessRecord& record = records.back();
          record.id = id;
          record.client = access.client;
          record.quorum = access.quorum;
          record.relay = relay;
          record.start = access.start;
          record.probes.resize(q.size());
        }
      }
      accesses.push_back(std::move(access));
      launch_attempt(id, event.time);
      continue;
    }

    if (event.type == EventType::kTimeout) {
      Access& access = accesses[static_cast<std::size_t>(event.access)];
      if (access.resolved || access.attempt != event.attempt ||
          access.outstanding == 0) {
        continue;  // stale: the attempt completed or was superseded
      }
      if (access.start >= config.warmup) {
        ++result.timed_out_attempts;
        QP_COUNTER_ADD("sim.timeouts", 1);
      }
      if (tracing) {
        char args[160];
        std::snprintf(args, sizeof(args),
                      "{\"id\": %lld, \"attempt\": %d, \"quorum\": %d, "
                      "\"outcome\": \"timeout\"}",
                      static_cast<long long>(event.access), access.attempt,
                      access.quorum);
        sim_span("sim.attempt", access.attempt_start, event.time, args);
      }
      if (access.attempt >= config.max_attempts) {
        fail_access(event.access, event.time, obs::AccessOutcome::kTimeout);
        continue;
      }
      const double wait = backoff(access.attempt);
      if (tracing) {
        char args[96];
        std::snprintf(args, sizeof(args), "{\"id\": %lld, \"attempt\": %d}",
                      static_cast<long long>(event.access), access.attempt);
        sim_span("sim.backoff", event.time, event.time + wait, args);
      }
      ++access.attempt;  // invalidates the attempt's in-flight probe events
      queue.push({event.time + wait, EventType::kRetry, access.client,
                  event.access, -1, access.attempt});
      continue;
    }

    if (event.type == EventType::kRetry) {
      Access& access = accesses[static_cast<std::size_t>(event.access)];
      if (access.resolved || access.attempt != event.attempt) continue;
      const int next = select_quorum(access, event.time);
      if (tracing) {
        char args[120];
        std::snprintf(args, sizeof(args),
                      "{\"id\": %lld, \"attempt\": %d, \"quorum\": %d}",
                      static_cast<long long>(event.access), access.attempt,
                      next);
        sim_span("sim.reselect", event.time, event.time, args);
      }
      if (next < 0) {
        fail_access(event.access, event.time,
                    obs::AccessOutcome::kUnavailable);
        continue;
      }
      if (access.start >= config.warmup) {
        ++result.retries;
        QP_COUNTER_ADD("sim.retries", 1);
      }
      access.quorum = next;
      access.tried.push_back(next);
      launch_attempt(event.access, event.time);
      continue;
    }

    if (event.type == EventType::kProbeArrive) {
      // Grant service in true arrival order (events are processed by time).
      // Nodes serve every delivered probe, including probes of attempts
      // that already timed out -- the work was sent, the node does it.
      const int node = event.where;
      const double start_service =
          std::max(event.time, node_free[static_cast<std::size_t>(node)]);
      const double done = start_service + service_time;
      node_free[static_cast<std::size_t>(node)] = done;
      node_busy[static_cast<std::size_t>(node)] += service_time;
      change_depth(node, event.time, +1);
      if (event.time >= config.warmup) {
        result.queue_wait.record(start_service - event.time);
      }
      const Access& access = accesses[static_cast<std::size_t>(event.access)];
      if (!access.resolved && access.attempt == event.attempt &&
          logger != nullptr && logged(event.access)) {
        records[static_cast<std::size_t>(event.access)]
            .probes[static_cast<std::size_t>(event.probe)]
            .queue_wait = start_service - event.time;
      }
      queue.push({done, EventType::kProbeDone, node, event.access,
                  event.probe, event.attempt});
      continue;
    }

    // kProbeDone.
    if (queueing) change_depth(event.where, event.time, -1);
    Access& access = accesses[static_cast<std::size_t>(event.access)];
    if (access.resolved || access.attempt != event.attempt) {
      continue;  // a late reply to a superseded attempt
    }
    --access.outstanding;
    if (config.mode == AccessMode::kSequential &&
        access.next_element_index <
            static_cast<int>(
                instance.system().quorum(access.quorum).size())) {
      const int idx = access.next_element_index++;
      if (auto next = launch_probe(access, event.access, idx, event.time)) {
        queue.push(*next);
      }
      continue;
    }
    if (access.outstanding == 0) {
      access.resolved = true;
      if (access.start >= config.warmup) {
        const double delay = event.time - access.start;
        total_delay_sum += delay;
        result.access_delay.record(delay);
        ++measured_accesses;
        QP_COUNTER_ADD("sim.completed_accesses", 1);
        result.per_client_mean_delay[static_cast<std::size_t>(access.client)] +=
            delay;
        ++result.per_client_count[static_cast<std::size_t>(access.client)];
        bucket_count(access.start, true);
      }
      if (tracing) {
        char args[160];
        std::snprintf(args, sizeof(args),
                      "{\"id\": %lld, \"attempt\": %d, \"quorum\": %d, "
                      "\"outcome\": \"ok\"}",
                      static_cast<long long>(event.access), access.attempt,
                      access.quorum);
        sim_span("sim.attempt", access.attempt_start, event.time, args);
        std::snprintf(args, sizeof(args),
                      "{\"id\": %lld, \"client\": %d, \"quorum\": %d, "
                      "\"attempts\": %d, \"outcome\": \"ok\"}",
                      static_cast<long long>(event.access), access.client,
                      access.quorum, static_cast<int>(access.tried.size()));
        sim_span("sim.access", access.start, event.time, args);
      }
      finish_record(event.access, event.time, obs::AccessOutcome::kOk);
    }
  }

  // Fire any boundaries still pending at the horizon, then close the series
  // with one final sample/tick at exactly t = duration (the grid above only
  // fires strictly below it).
  advance_time(config.duration);
  if (telemetry != nullptr) {
    take_sample(config.duration);
    telemetry->watch_histogram("sim.access_delay", nullptr);
    telemetry->watch_histogram("sim.queue_wait", nullptr);
  }
  if (progress_on) report_progress(config.duration);

  result.completed_accesses = measured_accesses;
  result.overall_mean_delay =
      measured_accesses > 0
          ? total_delay_sum / static_cast<double>(measured_accesses)
          : 0.0;
  for (int v = 0; v < n; ++v) {
    if (result.per_client_count[static_cast<std::size_t>(v)] > 0) {
      result.per_client_mean_delay[static_cast<std::size_t>(v)] /=
          static_cast<double>(
              result.per_client_count[static_cast<std::size_t>(v)]);
    }
    if (measured_total_accesses > 0.0) {
      result.per_node_access_share[static_cast<std::size_t>(v)] =
          node_probe_count[static_cast<std::size_t>(v)] /
          measured_total_accesses;
    }
    result.per_node_utilization[static_cast<std::size_t>(v)] =
        node_busy[static_cast<std::size_t>(v)] / config.duration;
    // Close the depth integral at the horizon (probes still in flight at
    // `duration` contribute their tail).
    change_depth(v, config.duration, 0);
    result.per_node_mean_queue_depth[static_cast<std::size_t>(v)] =
        depth_area[static_cast<std::size_t>(v)] / config.duration;
  }
  const std::int64_t resolved = measured_accesses + result.failed_accesses;
  result.availability =
      resolved > 0
          ? static_cast<double>(measured_accesses) /
                static_cast<double>(resolved)
          : 1.0;
  result.availability_series.reserve(bucket_total.size());
  for (std::size_t b = 0; b < bucket_total.size(); ++b) {
    const double fraction =
        bucket_total[b] > 0 ? static_cast<double>(bucket_ok[b]) /
                                  static_cast<double>(bucket_total[b])
                            : 1.0;
    result.availability_series.push_back(fraction);
    QP_SERIES_APPEND("sim.availability", fraction);
  }
  // The sim.* counters were updated incrementally at the event sites above
  // (and registered before the loop), so their final totals are already in
  // the registry -- identical to the per-run totals in `result`.
  return result;
}

}  // namespace qp::sim
