#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "core/evaluators.hpp"
#include "obs/obs.hpp"

namespace qp::sim {

namespace {

enum class EventType { kArrival, kProbeArrive, kProbeDone };

struct Event {
  double time = 0.0;
  EventType type = EventType::kArrival;
  /// kArrival: the client issuing an access; kProbeArrive: the node the
  /// probe reaches; kProbeDone: the node that served the probe under
  /// queueing (-1 without queueing, where no node state is tracked).
  int where = 0;
  std::int64_t access = 0;  ///< the access a probe belongs to
  /// Index of the probe within its access's quorum; -1 for kArrival. Routes
  /// per-probe queue waits into the access log record.
  int probe = -1;

  bool operator>(const Event& other) const { return time > other.time; }
};

struct Access {
  int client = 0;
  int quorum = 0;
  double start = 0.0;
  int next_element_index = 0;  ///< sequential mode: next probe to launch
  int outstanding = 0;         ///< probes not yet completed
};

}  // namespace

SimulationResult simulate(const core::QppInstance& instance,
                          const core::Placement& placement,
                          const SimulationConfig& config) {
  QP_REQUIRE(check::validate_instance(instance).ok(),
             "simulation instance violates its data contracts; see "
             "check::validate_instance");
  const int n = instance.num_nodes();
  if (!core::is_valid_placement(placement, instance.system().universe_size(),
                                n)) {
    throw std::invalid_argument("simulate: invalid placement");
  }
  if (!(config.duration > 0.0) || !(config.arrival_rate_per_client > 0.0)) {
    throw std::invalid_argument(
        "simulate: duration and arrival rate must be positive");
  }
  if (config.warmup < 0.0 || config.warmup >= config.duration) {
    throw std::invalid_argument("simulate: warmup must lie in [0, duration)");
  }
  if (config.latency_jitter < 0.0 || config.latency_jitter >= 1.0) {
    throw std::invalid_argument("simulate: latency_jitter must lie in [0, 1)");
  }
  if (config.relay_node >= n) {
    throw std::invalid_argument("simulate: relay_node out of range");
  }
  const int relay = config.relay_node < 0 ? -1 : config.relay_node;
  // Contract restatement of the throw above: a measurement window of zero
  // (or negative) length would make every statistic below vacuous.
  QP_REQUIRE(config.duration > config.warmup,
             "simulate: the measurement window (duration - warmup) must be "
             "positive");
  QP_SPAN("sim.simulate");

  std::mt19937_64 rng(config.seed);
  std::discrete_distribution<int> quorum_picker(
      instance.strategy().probabilities().begin(),
      instance.strategy().probabilities().end());

  // Nearest-quorum policy: the chosen quorum per client is fixed by the
  // placement, so precompute it.
  std::vector<int> nearest_quorum(static_cast<std::size_t>(n), 0);
  if (config.selection == SelectionPolicy::kNearestQuorum) {
    for (int v = 0; v < n; ++v) {
      double best = std::numeric_limits<double>::infinity();
      for (int q = 0; q < instance.system().num_quorums(); ++q) {
        const double d = core::max_delay(instance.metric(),
                                         instance.system().quorum(q),
                                         placement, v);
        if (d < best) {
          best = d;
          nearest_quorum[static_cast<std::size_t>(v)] = q;
        }
      }
    }
  }

  const bool queueing = config.service_rate > 0.0;
  const double service_time = queueing ? 1.0 / config.service_rate : 0.0;

  // Per-client Poisson arrival rates (weights are normalized to sum 1, so
  // uniform weights reproduce the configured per-client rate).
  std::vector<double> rate(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    rate[static_cast<std::size_t>(v)] =
        config.arrival_rate_per_client * n *
        instance.client_weights()[static_cast<std::size_t>(v)];
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  for (int v = 0; v < n; ++v) {
    if (rate[static_cast<std::size_t>(v)] <= 0.0) continue;
    std::exponential_distribution<double> gap(rate[static_cast<std::size_t>(v)]);
    queue.push({gap(rng), EventType::kArrival, v, 0});
  }

  std::vector<Access> accesses;
  // Per-access event log records, parallel to `accesses`. Only populated
  // for measured (post-warmup) accesses that pass the writer's sampling
  // filter; an empty probes vector marks "not logged" (quorums are
  // non-empty by construction).
  obs::AccessLogWriter* logger = config.access_log;
  std::vector<obs::AccessRecord> records;
  const auto logged = [&](std::int64_t id) {
    return logger != nullptr &&
           !records[static_cast<std::size_t>(id)].probes.empty();
  };
  std::vector<double> node_free(static_cast<std::size_t>(n), 0.0);
  std::vector<double> node_busy(static_cast<std::size_t>(n), 0.0);
  std::vector<double> node_probe_count(static_cast<std::size_t>(n), 0.0);

  SimulationResult result;
  result.per_client_mean_delay.assign(static_cast<std::size_t>(n), 0.0);
  result.per_client_count.assign(static_cast<std::size_t>(n), 0);
  result.per_node_access_share.assign(static_cast<std::size_t>(n), 0.0);
  result.per_node_utilization.assign(static_cast<std::size_t>(n), 0.0);
  result.per_node_mean_queue_depth.assign(static_cast<std::size_t>(n), 0.0);
  result.per_node_max_queue_depth.assign(static_cast<std::size_t>(n), 0);

  // Time-weighted queue-depth tracking (probes waiting or in service at a
  // node). Only maintained under queueing; without it probes never contend.
  std::vector<std::int64_t> node_depth(static_cast<std::size_t>(n), 0);
  std::vector<double> depth_area(static_cast<std::size_t>(n), 0.0);
  std::vector<double> depth_since(static_cast<std::size_t>(n), 0.0);
  const auto change_depth = [&](int node, double now, std::int64_t delta) {
    const auto v = static_cast<std::size_t>(node);
    depth_area[v] += static_cast<double>(node_depth[v]) * (now - depth_since[v]);
    depth_since[v] = now;
    node_depth[v] += delta;
    result.per_node_max_queue_depth[v] =
        std::max(result.per_node_max_queue_depth[v], node_depth[v]);
  };

  std::int64_t measured_accesses = 0;
  double measured_total_accesses = 0.0;  // incl. clients with 0 weight
  double total_delay_sum = 0.0;

  // Launches the probe for element index `idx` of the access's quorum at
  // time `when`: the probe reaches its node after the metric distance
  // (routed through the relay when configured), then (with queueing) waits
  // for the node's FIFO queue. Returns the event to schedule next
  // (kProbeArrive under queueing so that service is granted in true arrival
  // order, kProbeDone otherwise).
  std::uniform_real_distribution<double> jitter(1.0 - config.latency_jitter,
                                                1.0 + config.latency_jitter);
  const auto launch_probe = [&](const Access& access, std::int64_t id, int idx,
                                double when) {
    const quorum::Quorum& q = instance.system().quorum(access.quorum);
    const int element = q[static_cast<std::size_t>(idx)];
    const int node = placement[static_cast<std::size_t>(element)];
    const double factor = config.latency_jitter > 0.0 ? jitter(rng) : 1.0;
    const double path =
        relay >= 0 ? instance.metric()(access.client, relay) +
                         instance.metric()(relay, node)
                   : instance.metric()(access.client, node);
    const double arrive = when + factor * path;
    if (when >= config.warmup) {
      node_probe_count[static_cast<std::size_t>(node)] += 1.0;
    }
    if (logger != nullptr && logged(id)) {
      obs::AccessProbe& probe =
          records[static_cast<std::size_t>(id)]
              .probes[static_cast<std::size_t>(idx)];
      probe.element = element;
      probe.node = node;
      probe.net_delay = arrive - when;
    }
    if (queueing) {
      return Event{arrive, EventType::kProbeArrive, node, id, idx};
    }
    return Event{arrive, EventType::kProbeDone, -1, id, idx};
  };

  while (!queue.empty() && queue.top().time <= config.duration) {
    const Event event = queue.top();
    queue.pop();

    if (event.type == EventType::kArrival) {
      // Schedule this client's next access.
      std::exponential_distribution<double> gap(
          rate[static_cast<std::size_t>(event.where)]);
      queue.push({event.time + gap(rng), EventType::kArrival, event.where, 0});

      Access access;
      access.client = event.where;
      access.quorum = config.selection == SelectionPolicy::kNearestQuorum
                          ? nearest_quorum[static_cast<std::size_t>(event.where)]
                          : quorum_picker(rng);
      access.start = event.time;
      const auto& q = instance.system().quorum(access.quorum);
      const auto id = static_cast<std::int64_t>(accesses.size());
      if (access.start >= config.warmup) measured_total_accesses += 1.0;
      access.outstanding = static_cast<int>(q.size());
      if (logger != nullptr) {
        records.emplace_back();
        if (access.start >= config.warmup && logger->sampled(id)) {
          obs::AccessRecord& record = records.back();
          record.id = id;
          record.client = access.client;
          record.quorum = access.quorum;
          record.relay = relay;
          record.start = access.start;
          record.probes.resize(q.size());
        }
      }
      if (config.mode == AccessMode::kParallel) {
        accesses.push_back(access);
        for (int idx = 0; idx < static_cast<int>(q.size()); ++idx) {
          queue.push(launch_probe(access, id, idx, event.time));
        }
      } else {
        access.next_element_index = 1;
        accesses.push_back(access);
        queue.push(launch_probe(access, id, 0, event.time));
      }
      continue;
    }

    if (event.type == EventType::kProbeArrive) {
      // Grant service in true arrival order (events are processed by time).
      const int node = event.where;
      const double start_service =
          std::max(event.time, node_free[static_cast<std::size_t>(node)]);
      const double done = start_service + service_time;
      node_free[static_cast<std::size_t>(node)] = done;
      node_busy[static_cast<std::size_t>(node)] += service_time;
      change_depth(node, event.time, +1);
      if (event.time >= config.warmup) {
        result.queue_wait.record(start_service - event.time);
      }
      if (logger != nullptr && logged(event.access)) {
        records[static_cast<std::size_t>(event.access)]
            .probes[static_cast<std::size_t>(event.probe)]
            .queue_wait = start_service - event.time;
      }
      queue.push({done, EventType::kProbeDone, node, event.access,
                  event.probe});
      continue;
    }

    // kProbeDone.
    if (queueing) change_depth(event.where, event.time, -1);
    Access& access = accesses[static_cast<std::size_t>(event.access)];
    --access.outstanding;
    if (config.mode == AccessMode::kSequential &&
        access.next_element_index <
            static_cast<int>(
                instance.system().quorum(access.quorum).size())) {
      const int idx = access.next_element_index++;
      queue.push(launch_probe(access, event.access, idx, event.time));
      continue;
    }
    if (access.outstanding == 0 && access.start >= config.warmup) {
      const double delay = event.time - access.start;
      total_delay_sum += delay;
      result.access_delay.record(delay);
      ++measured_accesses;
      result.per_client_mean_delay[static_cast<std::size_t>(access.client)] +=
          delay;
      ++result.per_client_count[static_cast<std::size_t>(access.client)];
      if (logger != nullptr && logged(event.access)) {
        obs::AccessRecord& record =
            records[static_cast<std::size_t>(event.access)];
        record.finish = event.time;
        logger->record(std::move(record));
        // Leave a moved-from empty record behind; logged() is false for it
        // from now on, which is correct -- the access is finished.
      }
    }
  }

  result.completed_accesses = measured_accesses;
  result.overall_mean_delay =
      measured_accesses > 0
          ? total_delay_sum / static_cast<double>(measured_accesses)
          : 0.0;
  for (int v = 0; v < n; ++v) {
    if (result.per_client_count[static_cast<std::size_t>(v)] > 0) {
      result.per_client_mean_delay[static_cast<std::size_t>(v)] /=
          static_cast<double>(
              result.per_client_count[static_cast<std::size_t>(v)]);
    }
    if (measured_total_accesses > 0.0) {
      result.per_node_access_share[static_cast<std::size_t>(v)] =
          node_probe_count[static_cast<std::size_t>(v)] /
          measured_total_accesses;
    }
    result.per_node_utilization[static_cast<std::size_t>(v)] =
        node_busy[static_cast<std::size_t>(v)] / config.duration;
    // Close the depth integral at the horizon (probes still in flight at
    // `duration` contribute their tail).
    change_depth(v, config.duration, 0);
    result.per_node_mean_queue_depth[static_cast<std::size_t>(v)] =
        depth_area[static_cast<std::size_t>(v)] / config.duration;
  }
  // Totals are a pure function of (instance, placement, config) -- the event
  // loop is sequential -- so they satisfy the determinism contract.
  QP_COUNTER_ADD("sim.runs", 1);
  QP_COUNTER_ADD("sim.completed_accesses", measured_accesses);
  double measured_probes = 0.0;
  for (double c : node_probe_count) measured_probes += c;
  QP_COUNTER_ADD("sim.measured_probes", measured_probes);
  if (logger != nullptr) {
    QP_COUNTER_ADD("sim.logged_accesses", logger->recorded());
  }
  return result;
}

}  // namespace qp::sim
