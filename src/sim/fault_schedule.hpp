#pragma once

/// \file fault_schedule.hpp
/// Deterministic, replayable fault injection for the message-level
/// simulator (docs/SIMULATION.md).
///
/// A FaultSchedule is a plain list of timed fault windows, fixed before the
/// simulation starts -- no coin is flipped while the clock runs, so the
/// same schedule file plus the same simulation seed replays the exact same
/// run byte-for-byte (the access-log determinism contract extends to fault
/// runs unchanged). Three fault kinds:
///
///  - crash windows: node v is down during [from, until) -- probes
///    *arriving* at a crashed node are dropped (never served, never
///    answered);
///  - partitions: two node groups cannot exchange messages during
///    [from, until) -- probes *sent* while the partition is active are
///    dropped, in both directions. Relay routing does not circumvent a
///    partition: the client->node pair is what is checked;
///  - gray (slow-node) windows: probes launched toward node v during
///    [from, until) have their network delay multiplied by `factor` >= 1.
///    The node answers -- eventually -- which is exactly what makes gray
///    failures hard: only a timeout can tell "slow" from "dead".
///
/// Crashed nodes keep their *client* role: a site whose replica-hosting
/// service is down still issues accesses (and may find every quorum dead,
/// which the simulator reports as unavailability).
///
/// Schedules are written as `qplace.faults.v1` JSON documents (see
/// parse_fault_schedule) or generated pseudo-randomly from a seed for
/// churn experiments (random_fault_schedule).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/instance.hpp"

namespace qp::sim {

/// Node `node` is down during [from, until).
struct CrashWindow {
  int node = 0;
  double from = 0.0;
  double until = 0.0;
};

/// Groups `side_a` and `side_b` cannot exchange messages during
/// [from, until). Sides must be disjoint, sorted, duplicate-free.
struct PartitionWindow {
  std::vector<int> side_a;
  std::vector<int> side_b;
  double from = 0.0;
  double until = 0.0;
};

/// Probes launched toward `node` during [from, until) are slowed by
/// `factor` (>= 1). Overlapping gray windows multiply.
struct GrayWindow {
  int node = 0;
  double from = 0.0;
  double until = 0.0;
  double factor = 1.0;
};

class FaultSchedule {
 public:
  /// The empty schedule: no faults, every query returns the failure-free
  /// answer.
  FaultSchedule() = default;

  /// \throws std::invalid_argument on a malformed window: negative node
  /// ids, until < from, factor < 1, or unsorted/overlapping partition
  /// sides.
  FaultSchedule(std::vector<CrashWindow> crashes,
                std::vector<PartitionWindow> partitions,
                std::vector<GrayWindow> gray);

  bool empty() const {
    return crashes_.empty() && partitions_.empty() && gray_.empty();
  }
  /// Largest node id referenced by any window; -1 for the empty schedule.
  /// Callers validate it against their node count.
  int max_node() const { return max_node_; }

  /// Node down at time t?
  bool crashed(int node, double t) const;
  /// Nodes a and b unable to exchange messages at time t (symmetric)?
  bool partitioned(int a, int b, double t) const;
  /// Product of the factors of the gray windows covering (node, t); 1 when
  /// none does.
  double gray_factor(int node, double t) const;
  /// Does any fault window (of any kind) overlap [from, until]?
  bool any_active(double from, double until) const;

  /// The failure set seen by `client` at time t: element u is failed iff
  /// the node hosting it is crashed or partitioned away from the client.
  /// Feed the result to quorum::check_liveness for the live quorums.
  /// \throws std::invalid_argument on placement nodes outside [0, inf) --
  /// full placement validation is the simulator's job.
  std::vector<bool> failed_elements(const core::Placement& placement,
                                    int client, double t) const;

  const std::vector<CrashWindow>& crashes() const { return crashes_; }
  const std::vector<PartitionWindow>& partitions() const {
    return partitions_;
  }
  const std::vector<GrayWindow>& gray() const { return gray_; }

 private:
  std::vector<CrashWindow> crashes_;
  std::vector<PartitionWindow> partitions_;
  std::vector<GrayWindow> gray_;
  int max_node_ = -1;
};

/// Parses a `qplace.faults.v1` JSON document:
///
///   {"schema": "qplace.faults.v1",
///    "crashes":    [{"node": 3, "from": 10, "until": 40}, ...],
///    "partitions": [{"a": [0, 1], "b": [4, 5], "from": 20, "until": 60}],
///    "gray":       [{"node": 2, "from": 0, "until": 90, "factor": 4}]}
///
/// All three arrays are optional; extra members are rejected nowhere (the
/// strict JSON reader already rejects malformed syntax).
/// \throws std::runtime_error on malformed JSON or a missing/foreign
/// schema tag; std::invalid_argument on invalid windows.
FaultSchedule parse_fault_schedule(const std::string& text);

/// Stream variant of parse_fault_schedule (reads the stream to its end).
FaultSchedule load_fault_schedule(std::istream& in);

/// Canonical single-line `qplace.faults.v1` rendering (doubles in %.17g,
/// the repo-wide byte-stable format); parse(render(s)) round-trips.
std::string render_fault_schedule(const FaultSchedule& schedule);

/// FNV-1a (64-bit, hex) over the canonical rendering. Stamped into the
/// access-log / run-report context as "fault_digest" so `qplace analyze`
/// can refuse to cross-check a log against the wrong schedule.
std::string fault_schedule_digest(const FaultSchedule& schedule);

/// Knobs of the seedable churn generator below. Rates are expected window
/// counts per node over the whole horizon (Poisson); durations are means
/// of exponential draws, truncated to the horizon.
struct RandomFaultOptions {
  double crash_rate = 0.0;
  double mean_downtime = 50.0;
  double partition_rate = 0.0;  ///< expected partitions over the horizon
  double mean_partition_duration = 50.0;
  double gray_rate = 0.0;
  double mean_gray_duration = 50.0;
  double gray_factor = 4.0;  ///< slowdown of every generated gray window
};

/// Generates a pseudo-random schedule over [0, duration) for `num_nodes`
/// nodes. Deterministic in (num_nodes, duration, options, seed) -- the E16
/// churn experiment sweeps `options` at a fixed seed. Partitions split a
/// random non-trivial prefix/suffix of a seeded node shuffle.
/// \throws std::invalid_argument on num_nodes <= 0, duration <= 0,
/// negative rates/means, or gray_factor < 1.
FaultSchedule random_fault_schedule(int num_nodes, double duration,
                                    const RandomFaultOptions& options,
                                    std::uint64_t seed);

}  // namespace qp::sim
