#include "sched/exact.hpp"

#include <limits>
#include <stdexcept>

namespace qp::sched {

ExactScheduleResult solve_exact(const SchedulingInstance& instance) {
  const int n = instance.num_jobs();
  if (n > 20) {
    throw std::invalid_argument("solve_exact: limited to n <= 20 jobs");
  }
  if (n == 0) return {0.0, {}};

  // pred_mask[j]: bitmask of direct predecessors of j.
  std::vector<unsigned> pred_mask(static_cast<std::size_t>(n), 0u);
  for (int j = 0; j < n; ++j) {
    for (int p : instance.predecessors(j)) {
      pred_mask[static_cast<std::size_t>(j)] |= 1u << p;
    }
  }

  const unsigned full = (n == 32) ? ~0u : ((1u << n) - 1u);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[S] = min cost of scheduling exactly the jobs in S first (S must be
  // downward closed); last_job[S] reconstructs the order.
  std::vector<double> dp(static_cast<std::size_t>(full) + 1, kInf);
  std::vector<signed char> last_job(static_cast<std::size_t>(full) + 1, -1);
  // total_time[S]: sum of processing times in S (completion time of the
  // last job of any schedule of S).
  std::vector<double> total_time(static_cast<std::size_t>(full) + 1, 0.0);
  for (unsigned s = 1; s <= full; ++s) {
    const int low = __builtin_ctz(s);
    total_time[s] = total_time[s & (s - 1u)] +
                    instance.job(low).processing_time;
  }

  dp[0] = 0.0;
  for (unsigned s = 0; s < full; ++s) {
    if (dp[s] == kInf) continue;
    // Extend S by any job whose predecessors are all inside S.
    for (int j = 0; j < n; ++j) {
      const unsigned bit = 1u << j;
      if (s & bit) continue;
      if ((pred_mask[static_cast<std::size_t>(j)] & ~s) != 0u) continue;
      const unsigned next = s | bit;
      const double completion = total_time[next];
      const double candidate = dp[s] + instance.job(j).weight * completion;
      if (candidate < dp[next]) {
        dp[next] = candidate;
        last_job[next] = static_cast<signed char>(j);
      }
    }
  }

  ExactScheduleResult result;
  result.cost = dp[full];
  result.order.resize(static_cast<std::size_t>(n));
  unsigned s = full;
  for (int idx = n - 1; idx >= 0; --idx) {
    const int j = last_job[s];
    result.order[static_cast<std::size_t>(idx)] = j;
    s &= ~(1u << j);
  }
  return result;
}

}  // namespace qp::sched
