#pragma once

/// \file exact.hpp
/// Exact dynamic-programming solver for 1|prec|sum(w_j C_j) over downward-
/// closed job sets (bitmask DP, O(2^n * n)). Practical for n <= 20; used to
/// validate the NP-hardness reduction (paper Thm 3.6) on small instances.

#include <vector>

#include "sched/scheduling.hpp"

namespace qp::sched {

struct ExactScheduleResult {
  double cost = 0.0;
  std::vector<int> order;
};

/// \throws std::invalid_argument if instance.num_jobs() > 20.
ExactScheduleResult solve_exact(const SchedulingInstance& instance);

}  // namespace qp::sched
