#include "sched/reduction.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/generators.hpp"

namespace qp::sched {

double ReductionResult::delay_for_schedule_cost(double schedule_cost) const {
  const double nt = num_time_jobs;
  const double fixed = (1.0 - epsilon) / nt * (nt * (nt + 1.0) / 2.0);
  return epsilon / num_weight_jobs * schedule_cost + fixed;
}

double ReductionResult::schedule_cost_for_delay(double delay) const {
  const double nt = num_time_jobs;
  const double fixed = (1.0 - epsilon) / nt * (nt * (nt + 1.0) / 2.0);
  return (delay - fixed) * num_weight_jobs / epsilon;
}

ReductionResult reduce_to_ssqpp(const SchedulingInstance& sched) {
  if (!sched.is_woeginger_form()) {
    throw std::invalid_argument(
        "reduce_to_ssqpp: instance must be in Woeginger special form");
  }
  const int total = sched.num_jobs();
  int num_time = 0;
  for (int j = 0; j < total; ++j) {
    if (sched.job(j).processing_time == 1.0) ++num_time;
  }
  const int num_weight = total - num_time;
  if (num_time < 2 || num_weight < 1) {
    throw std::invalid_argument(
        "reduce_to_ssqpp: need >= 2 unit-time jobs and >= 1 unit-weight job");
  }

  // Element 0 is e_0; time-job j gets the next free element id.
  std::vector<int> element_of_job(static_cast<std::size_t>(total), -1);
  std::vector<int> job_of_element(static_cast<std::size_t>(num_time) + 1, -1);
  int next_element = 1;
  for (int j = 0; j < total; ++j) {
    if (sched.job(j).processing_time == 1.0) {
      element_of_job[static_cast<std::size_t>(j)] = next_element;
      job_of_element[static_cast<std::size_t>(next_element)] = j;
      ++next_element;
    }
  }

  // eps < 1/(2 n_t + 1) keeps both the probability ordering and the capacity
  // separation of the construction; eps = 1/(2(n_t + 1)) satisfies it.
  const double eps = 1.0 / (2.0 * (num_time + 1));

  std::vector<quorum::Quorum> quorums;
  std::vector<double> probabilities;
  // Type-1 quorums: one per unit-weight job.
  for (int j = 0; j < total; ++j) {
    if (sched.job(j).processing_time != 0.0) continue;
    quorum::Quorum q = {0};
    for (int pred : sched.predecessors(j)) {
      q.push_back(element_of_job[static_cast<std::size_t>(pred)]);
    }
    std::sort(q.begin(), q.end());
    quorums.push_back(std::move(q));
    probabilities.push_back(eps / num_weight);
  }
  // Type-2 quorums: {u, e_0} for each element u != e_0.
  for (int u = 1; u <= num_time; ++u) {
    quorums.push_back({0, u});
    probabilities.push_back((1.0 - eps) / num_time);
  }

  quorum::QuorumSystem system(num_time + 1, std::move(quorums));
  quorum::AccessStrategy strategy(system, std::move(probabilities));

  // Unit path v_0 - v_1 - ... - v_{n_t}; v_0 is the source.
  graph::Metric metric =
      graph::Metric::from_graph(graph::path_graph(num_time + 1, 1.0));

  // cap(v_0) = 1 = load(e_0); other capacities fit exactly one element.
  std::vector<double> capacities(static_cast<std::size_t>(num_time) + 1,
                                 2.0 * (1.0 - eps) / num_time - eps);
  capacities[0] = 1.0;

  core::SsqppInstance instance(std::move(metric), std::move(capacities),
                               std::move(system), std::move(strategy), 0);

  ReductionResult out{std::move(instance),
                      eps,
                      num_time,
                      num_weight,
                      std::move(element_of_job),
                      std::move(job_of_element)};
  return out;
}

std::optional<std::vector<int>> schedule_from_placement(
    const SchedulingInstance& sched, const ReductionResult& reduction,
    const core::Placement& placement) {
  const int num_time = reduction.num_time_jobs;
  if (static_cast<int>(placement.size()) != num_time + 1) return std::nullopt;
  if (placement[0] != 0) return std::nullopt;  // e_0 must sit on v_0
  // The placement must be a bijection onto the path nodes.
  std::vector<int> job_at_position(static_cast<std::size_t>(num_time) + 1, -1);
  for (int e = 1; e <= num_time; ++e) {
    const int node = placement[static_cast<std::size_t>(e)];
    if (node <= 0 || node > num_time) return std::nullopt;
    if (job_at_position[static_cast<std::size_t>(node)] != -1) {
      return std::nullopt;
    }
    job_at_position[static_cast<std::size_t>(node)] =
        reduction.job_of_element[static_cast<std::size_t>(e)];
  }

  // Emit time jobs in path order, releasing weight jobs as soon as all their
  // predecessors have run (weight jobs have zero processing time).
  const int total = sched.num_jobs();
  std::vector<int> remaining_preds(static_cast<std::size_t>(total), 0);
  std::vector<std::vector<int>> successors(static_cast<std::size_t>(total));
  for (const auto& [before, after] : sched.precedences()) {
    ++remaining_preds[static_cast<std::size_t>(after)];
    successors[static_cast<std::size_t>(before)].push_back(after);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(total));
  const auto release = [&](int finished) {
    for (int succ : successors[static_cast<std::size_t>(finished)]) {
      if (--remaining_preds[static_cast<std::size_t>(succ)] == 0) {
        order.push_back(succ);
      }
    }
  };
  // Weight jobs with no predecessors run first (completion time 0).
  for (int j = 0; j < total; ++j) {
    if (sched.job(j).processing_time == 0.0 &&
        remaining_preds[static_cast<std::size_t>(j)] == 0) {
      order.push_back(j);
    }
  }
  for (int pos = 1; pos <= num_time; ++pos) {
    const int job = job_at_position[static_cast<std::size_t>(pos)];
    order.push_back(job);
    release(job);
  }
  if (static_cast<int>(order.size()) != total) return std::nullopt;
  return order;
}

core::Placement placement_from_schedule(const SchedulingInstance& sched,
                                        const ReductionResult& reduction,
                                        const std::vector<int>& order) {
  if (!sched.is_feasible_order(order)) {
    throw std::invalid_argument("placement_from_schedule: infeasible order");
  }
  core::Placement placement(
      static_cast<std::size_t>(reduction.num_time_jobs) + 1, -1);
  placement[0] = 0;
  int position = 0;
  for (int job : order) {
    if (sched.job(job).processing_time == 1.0) {
      ++position;
      const int element =
          reduction.element_of_job[static_cast<std::size_t>(job)];
      placement[static_cast<std::size_t>(element)] = position;
    }
  }
  return placement;
}

}  // namespace qp::sched
