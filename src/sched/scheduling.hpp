#pragma once

/// \file scheduling.hpp
/// Single-machine weighted-completion-time scheduling with precedence
/// constraints, 1|prec|sum(w_j C_j). The paper (Thm 3.6) reduces its
/// Woeginger special form (Thm 3.5(b)) to the Single-Source Quorum
/// Placement Problem; this module provides the instances, feasibility
/// checking, cost evaluation and heuristics. Exact solvers live in
/// sched/exact.hpp, the reduction in sched/reduction.hpp.

#include <random>
#include <vector>

namespace qp::sched {

struct Job {
  double processing_time = 0.0;
  double weight = 0.0;
};

/// An instance of 1|prec|sum(w_j C_j). Precedence (i, j) means job i must
/// complete before job j starts.
class SchedulingInstance {
 public:
  SchedulingInstance() = default;

  /// \throws std::invalid_argument on negative times/weights, out-of-range
  /// precedence endpoints, self-precedences, or a cyclic precedence relation.
  SchedulingInstance(std::vector<Job> jobs,
                     std::vector<std::pair<int, int>> precedences);

  int num_jobs() const { return static_cast<int>(jobs_.size()); }
  const Job& job(int j) const { return jobs_.at(static_cast<std::size_t>(j)); }
  const std::vector<Job>& jobs() const { return jobs_; }
  const std::vector<std::pair<int, int>>& precedences() const {
    return precedences_;
  }

  /// Direct predecessors of job j.
  const std::vector<int>& predecessors(int j) const {
    return predecessors_.at(static_cast<std::size_t>(j));
  }

  /// True iff \p order is a permutation of all jobs respecting precedences.
  bool is_feasible_order(const std::vector<int>& order) const;

  /// Sum of w_j C_j for the given feasible order.
  /// \throws std::invalid_argument if the order is infeasible.
  double cost(const std::vector<int>& order) const;

  /// True iff the instance is in the Woeginger special form of Thm 3.5(b):
  /// each job has (T=0, w=1) or (T=1, w=0), and every precedence goes from a
  /// (T=1, w=0) job to a (T=0, w=1) job.
  bool is_woeginger_form() const;

 private:
  std::vector<Job> jobs_;
  std::vector<std::pair<int, int>> precedences_;
  std::vector<std::vector<int>> predecessors_;
};

/// Weighted-shortest-processing-time list heuristic: repeatedly schedules
/// the available job maximizing w_j / (T_j + epsilon) (ties by id).
/// Feasible but generally suboptimal; used as a baseline.
std::vector<int> list_schedule(const SchedulingInstance& instance);

/// Smith's rule: for instances WITHOUT precedence constraints, sorting by
/// non-increasing w_j / T_j is exactly optimal (jobs with T = 0 and w > 0
/// first). \throws std::invalid_argument if the instance has precedences.
std::vector<int> smith_rule(const SchedulingInstance& instance);

/// Random Woeginger-form instance: \p num_unit_time jobs with (T=1, w=0),
/// \p num_unit_weight jobs with (T=0, w=1), and each (time, weight) pair
/// made a precedence independently with probability \p edge_probability.
/// Job ids: 0..num_unit_time-1 are the (T=1) jobs.
SchedulingInstance random_woeginger_instance(int num_unit_time,
                                             int num_unit_weight,
                                             double edge_probability,
                                             std::mt19937_64& rng);

}  // namespace qp::sched
