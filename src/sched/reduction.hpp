#pragma once

/// \file reduction.hpp
/// The paper's NP-hardness reduction (Thm 3.6): a Woeginger special-form
/// instance of 1|prec|sum(w_j C_j) (Thm 3.5(b)) maps to a Single-Source
/// Quorum Placement instance on a unit-length path such that schedules and
/// capacity-feasible placements correspond, with
///   Delta_f(v0) = (eps/m) * cost(pi_f) + ((1-eps)/(n-m)) * sum_{i=1..n-m} i.

#include <optional>

#include "core/instance.hpp"
#include "sched/scheduling.hpp"

namespace qp::sched {

/// Result of the Thm 3.6 construction, with enough bookkeeping to translate
/// solutions back and forth.
struct ReductionResult {
  core::SsqppInstance instance;

  double epsilon = 0.0;        ///< the constant 0 < eps < (1-eps)/(n-m)
  int num_time_jobs = 0;       ///< n - m: jobs with (T=1, w=0)
  int num_weight_jobs = 0;     ///< m: jobs with (T=0, w=1)

  /// element_of_job[j] = universe element for time-job j (weight jobs have
  /// no element; entry is -1). Element 0 is the shared intersection e_0.
  std::vector<int> element_of_job;
  /// job_of_element[e] = time-job represented by element e (e >= 1).
  std::vector<int> job_of_element;

  /// Delta_f(v0) value corresponding to a schedule of the given cost.
  double delay_for_schedule_cost(double schedule_cost) const;
  /// Inverse of delay_for_schedule_cost.
  double schedule_cost_for_delay(double delay) const;
};

/// Builds the SSQPP instance of Thm 3.6.
/// \throws std::invalid_argument if \p instance is not in Woeginger form.
ReductionResult reduce_to_ssqpp(const SchedulingInstance& instance);

/// Converts a capacity-feasible placement of the reduced instance back to a
/// feasible schedule: time-job j runs at the path position of its element,
/// weight jobs run as early as their predecessors allow. Returns
/// std::nullopt if the placement is not one-element-per-node feasible.
std::optional<std::vector<int>> schedule_from_placement(
    const SchedulingInstance& sched, const ReductionResult& reduction,
    const core::Placement& placement);

/// Converts a feasible schedule into the corresponding placement (element of
/// the i-th scheduled time-job goes to path node i+1; e_0 stays on v0).
core::Placement placement_from_schedule(const SchedulingInstance& sched,
                                        const ReductionResult& reduction,
                                        const std::vector<int>& order);

}  // namespace qp::sched
