#include "sched/scheduling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qp::sched {

SchedulingInstance::SchedulingInstance(
    std::vector<Job> jobs, std::vector<std::pair<int, int>> precedences)
    : jobs_(std::move(jobs)), precedences_(std::move(precedences)) {
  const int n = num_jobs();
  for (const Job& job : jobs_) {
    if (!(job.processing_time >= 0.0) || !std::isfinite(job.processing_time) ||
        !(job.weight >= 0.0) || !std::isfinite(job.weight)) {
      throw std::invalid_argument(
          "SchedulingInstance: times/weights must be finite, >= 0");
    }
  }
  predecessors_.resize(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> successors(static_cast<std::size_t>(n));
  for (const auto& [before, after] : precedences_) {
    if (before < 0 || before >= n || after < 0 || after >= n) {
      throw std::invalid_argument("SchedulingInstance: precedence out of range");
    }
    if (before == after) {
      throw std::invalid_argument("SchedulingInstance: self-precedence");
    }
    predecessors_[static_cast<std::size_t>(after)].push_back(before);
    successors[static_cast<std::size_t>(before)].push_back(after);
  }
  // Cycle check via Kahn's algorithm.
  std::vector<int> in_degree(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    in_degree[static_cast<std::size_t>(j)] =
        static_cast<int>(predecessors_[static_cast<std::size_t>(j)].size());
  }
  std::vector<int> ready;
  for (int j = 0; j < n; ++j) {
    if (in_degree[static_cast<std::size_t>(j)] == 0) ready.push_back(j);
  }
  int processed = 0;
  while (!ready.empty()) {
    const int j = ready.back();
    ready.pop_back();
    ++processed;
    for (int succ : successors[static_cast<std::size_t>(j)]) {
      if (--in_degree[static_cast<std::size_t>(succ)] == 0) ready.push_back(succ);
    }
  }
  if (processed != n) {
    throw std::invalid_argument("SchedulingInstance: precedence cycle");
  }
}

bool SchedulingInstance::is_feasible_order(const std::vector<int>& order) const {
  const int n = num_jobs();
  if (static_cast<int>(order.size()) != n) return false;
  std::vector<int> position(static_cast<std::size_t>(n), -1);
  for (int idx = 0; idx < n; ++idx) {
    const int j = order[static_cast<std::size_t>(idx)];
    if (j < 0 || j >= n || position[static_cast<std::size_t>(j)] != -1) {
      return false;
    }
    position[static_cast<std::size_t>(j)] = idx;
  }
  for (const auto& [before, after] : precedences_) {
    if (position[static_cast<std::size_t>(before)] >
        position[static_cast<std::size_t>(after)]) {
      return false;
    }
  }
  return true;
}

double SchedulingInstance::cost(const std::vector<int>& order) const {
  if (!is_feasible_order(order)) {
    throw std::invalid_argument("SchedulingInstance::cost: infeasible order");
  }
  double time = 0.0;
  double total = 0.0;
  for (int j : order) {
    time += jobs_[static_cast<std::size_t>(j)].processing_time;
    total += jobs_[static_cast<std::size_t>(j)].weight * time;
  }
  return total;
}

bool SchedulingInstance::is_woeginger_form() const {
  const auto is_time_job = [](const Job& j) {
    return j.processing_time == 1.0 && j.weight == 0.0;
  };
  const auto is_weight_job = [](const Job& j) {
    return j.processing_time == 0.0 && j.weight == 1.0;
  };
  for (const Job& j : jobs_) {
    if (!is_time_job(j) && !is_weight_job(j)) return false;
  }
  for (const auto& [before, after] : precedences_) {
    if (!is_time_job(jobs_[static_cast<std::size_t>(before)]) ||
        !is_weight_job(jobs_[static_cast<std::size_t>(after)])) {
      return false;
    }
  }
  return true;
}

std::vector<int> list_schedule(const SchedulingInstance& instance) {
  const int n = instance.num_jobs();
  std::vector<int> remaining_preds(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> successors(static_cast<std::size_t>(n));
  for (const auto& [before, after] : instance.precedences()) {
    ++remaining_preds[static_cast<std::size_t>(after)];
    successors[static_cast<std::size_t>(before)].push_back(after);
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> scheduled(static_cast<std::size_t>(n), 0);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    double best_score = -1.0;
    for (int j = 0; j < n; ++j) {
      if (scheduled[static_cast<std::size_t>(j)] ||
          remaining_preds[static_cast<std::size_t>(j)] > 0) {
        continue;
      }
      const double score = instance.job(j).weight /
                           (instance.job(j).processing_time + 1e-9);
      if (best < 0 || score > best_score) {
        best = j;
        best_score = score;
      }
    }
    scheduled[static_cast<std::size_t>(best)] = 1;
    order.push_back(best);
    for (int succ : successors[static_cast<std::size_t>(best)]) {
      --remaining_preds[static_cast<std::size_t>(succ)];
    }
  }
  return order;
}

std::vector<int> smith_rule(const SchedulingInstance& instance) {
  if (!instance.precedences().empty()) {
    throw std::invalid_argument(
        "smith_rule: only valid without precedence constraints");
  }
  const int n = instance.num_jobs();
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) order[static_cast<std::size_t>(j)] = j;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const Job& ja = instance.job(a);
    const Job& jb = instance.job(b);
    // Compare w_a/T_a > w_b/T_b without dividing (handles T = 0: infinite
    // ratio sorts first when w > 0).
    const double lhs = ja.weight * jb.processing_time;
    const double rhs = jb.weight * ja.processing_time;
    if (lhs != rhs) return lhs > rhs;
    return a < b;
  });
  return order;
}

SchedulingInstance random_woeginger_instance(int num_unit_time,
                                             int num_unit_weight,
                                             double edge_probability,
                                             std::mt19937_64& rng) {
  if (num_unit_time < 1 || num_unit_weight < 1) {
    throw std::invalid_argument(
        "random_woeginger_instance: both job classes must be non-empty");
  }
  std::vector<Job> jobs;
  for (int i = 0; i < num_unit_time; ++i) jobs.push_back({1.0, 0.0});
  for (int i = 0; i < num_unit_weight; ++i) jobs.push_back({0.0, 1.0});
  std::vector<std::pair<int, int>> precedences;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int t = 0; t < num_unit_time; ++t) {
    for (int w = 0; w < num_unit_weight; ++w) {
      if (coin(rng) < edge_probability) {
        precedences.emplace_back(t, num_unit_time + w);
      }
    }
  }
  return SchedulingInstance(std::move(jobs), std::move(precedences));
}

}  // namespace qp::sched
