#pragma once

/// \file design_baselines.hpp
/// Baselines from the prior work the paper positions itself against
/// (Sec 2). Lin's 2-approximation for the quorum *design* problem outputs
/// a single singleton quorum placed at the 1-median: its closest-quorum
/// delay is excellent, but "such a solution is not very desirable, since it
/// eliminates the advantages (such as load dispersion and fault tolerance)
/// of any distributed quorum-based algorithm" -- the E12 experiment
/// quantifies exactly that trade-off.

#include <vector>

#include "core/instance.hpp"

namespace qp::core {

/// Lin's degenerate design: one quorum, one element, at the (weighted)
/// 1-median of the metric.
struct SinglePointDesign {
  quorum::QuorumSystem system;      ///< {{0}} over a 1-element universe
  quorum::AccessStrategy strategy;  ///< the only strategy: p = 1
  Placement placement;              ///< element 0 -> median
  int median = 0;                   ///< argmin_v sum_v' w_v' d(v', v)
  double average_delay = 0.0;       ///< Avg_v d(v, median): every delay
                                    ///< notion coincides for a single point
};

/// \p client_weights may be empty (uniform) or one weight per point.
/// \throws std::invalid_argument on a wrong-sized weight vector.
SinglePointDesign lin_single_point_design(
    const graph::Metric& metric,
    const std::vector<double>& client_weights = {});

}  // namespace qp::core
