#include "core/capacity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qp::core {

std::vector<CapacitySlot> capacity_slots(const graph::Metric& metric,
                                         const std::vector<double>& capacities,
                                         double per_element_load, int source,
                                         int max_copies_per_node) {
  if (!(per_element_load > 0.0)) {
    throw std::invalid_argument("capacity_slots: per_element_load > 0 required");
  }
  if (max_copies_per_node < 1) {
    throw std::invalid_argument("capacity_slots: max_copies_per_node >= 1");
  }
  if (static_cast<int>(capacities.size()) != metric.num_points()) {
    throw std::invalid_argument("capacity_slots: one capacity per node");
  }
  if (source < 0 || source >= metric.num_points()) {
    throw std::invalid_argument("capacity_slots: source out of range");
  }
  std::vector<CapacitySlot> slots;
  for (int v = 0; v < metric.num_points(); ++v) {
    // A fixed relative tolerance absorbs accumulated floating-point error in
    // capacities expressed as multiples of the element load. Clamp before
    // the int conversion: huge capacity/load ratios must not overflow.
    const double raw = std::floor(capacities[static_cast<std::size_t>(v)] /
                                      per_element_load +
                                  1e-9);
    const int copies =
        raw >= static_cast<double>(max_copies_per_node)
            ? max_copies_per_node
            : static_cast<int>(raw);
    for (int c = 0; c < copies; ++c) {
      slots.push_back({v, metric(source, v)});
    }
  }
  std::stable_sort(slots.begin(), slots.end(),
                   [](const CapacitySlot& a, const CapacitySlot& b) {
                     if (a.distance != b.distance) return a.distance < b.distance;
                     return a.node < b.node;
                   });
  return slots;
}

}  // namespace qp::core
