#pragma once

/// \file exact.hpp
/// Exact (branch-and-bound) solvers for small QPP / SSQPP instances. These
/// are reference oracles: the experiment harness compares the paper's
/// approximation algorithms against the true optimum they compute. All
/// objectives here are monotone under extending a partial placement, which
/// makes partial-cost pruning sound.

#include <cstdint>
#include <optional>

#include "core/instance.hpp"

namespace qp::core {

struct ExactResult {
  double delay = 0.0;
  Placement placement;
  std::uint64_t explored_states = 0;
};

struct ExactOptions {
  /// Abort via std::runtime_error beyond this many search states.
  std::uint64_t max_states = 50'000'000;
};

/// Minimum Delta_f(v0) over capacity-feasible placements (paper Problem
/// 3.2). std::nullopt if no capacity-feasible placement exists.
std::optional<ExactResult> exact_ssqpp(const SsqppInstance& instance,
                                       const ExactOptions& options = {});

/// Minimum Avg_v Delta_f(v) over capacity-feasible placements (paper
/// Problem 1.1).
std::optional<ExactResult> exact_qpp_max_delay(const QppInstance& instance,
                                               const ExactOptions& options = {});

/// Minimum Avg_v Gamma_f(v) over capacity-feasible placements (paper Sec 5).
std::optional<ExactResult> exact_qpp_total_delay(
    const QppInstance& instance, const ExactOptions& options = {});

}  // namespace qp::core
