#pragma once

/// \file capacity.hpp
/// Capacity preprocessing for uniform-load quorum systems (paper Sec 4.1):
/// nodes with cap(v) < load(u) are suppressed and nodes with larger capacity
/// are replicated into floor(cap(v) / load(u)) unit "slots", which is
/// equivalent to greedily packing copies of load(u). Layout algorithms then
/// assign elements to slots.

#include <vector>

#include "graph/metric.hpp"

namespace qp::core {

/// One placement slot: a node that can absorb one element of uniform load.
struct CapacitySlot {
  int node = 0;
  double distance = 0.0;  ///< d(source, node)
};

/// All slots induced by the capacities for a given per-element load, sorted
/// by non-decreasing distance from \p source (ties by node id). A node with
/// capacity for more than \p max_copies_per_node elements contributes only
/// that many slots -- no layout ever needs more than the universe size per
/// node, and unbounded capacities would otherwise materialize billions of
/// slots.
/// \throws std::invalid_argument if per_element_load <= 0 or
///         max_copies_per_node < 1.
std::vector<CapacitySlot> capacity_slots(const graph::Metric& metric,
                                         const std::vector<double>& capacities,
                                         double per_element_load, int source,
                                         int max_copies_per_node);

}  // namespace qp::core
