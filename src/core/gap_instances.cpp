#include "core/gap_instances.hpp"

#include <stdexcept>

#include "graph/generators.hpp"

namespace qp::core {

namespace {

/// Single quorum over the whole universe; the only access strategy is p=1.
quorum::QuorumSystem whole_universe_system(int n) {
  quorum::Quorum all;
  all.reserve(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) all.push_back(u);
  return quorum::QuorumSystem(n, {std::move(all)});
}

}  // namespace

GapConstruction general_metric_gap_instance(int n, double m_distance) {
  if (n < 2 || !(m_distance > 1.0)) {
    throw std::invalid_argument(
        "general_metric_gap_instance: need n >= 2, M > 1");
  }
  // Star graph centered at v0 = node 0: n - 2 unit spokes and one spoke of
  // length M. Its shortest-path metric has d(v0, .) = (0, 1, ..., 1, M).
  graph::Graph star(n);
  for (int v = 1; v < n - 1; ++v) star.add_edge(0, v, 1.0);
  star.add_edge(0, n - 1, m_distance);
  graph::Metric metric = graph::Metric::from_graph(star);

  quorum::QuorumSystem system = whole_universe_system(n);
  quorum::AccessStrategy strategy = quorum::AccessStrategy::uniform(system);
  // Every element has load 1 and every node capacity 1: all nodes are used,
  // so the quorum's max distance is forced to M.
  std::vector<double> capacities(static_cast<std::size_t>(n), 1.0);
  SsqppInstance instance(std::move(metric), std::move(capacities),
                         std::move(system), std::move(strategy), 0);

  GapConstruction out{std::move(instance), m_distance,
                      static_cast<double>(n)};
  return out;
}

GapConstruction broom_gap_instance(int k) {
  if (k < 2) throw std::invalid_argument("broom_gap_instance: k >= 2");
  const int n = k * k;
  graph::Metric metric = graph::Metric::from_graph(graph::broom_graph(k));
  quorum::QuorumSystem system = whole_universe_system(n);
  quorum::AccessStrategy strategy = quorum::AccessStrategy::uniform(system);
  std::vector<double> capacities(static_cast<std::size_t>(n), 1.0);
  SsqppInstance instance(std::move(metric), std::move(capacities),
                         std::move(system), std::move(strategy), 0);
  GapConstruction out{std::move(instance), static_cast<double>(k),
                      2.0 * k / 3.0};
  return out;
}

}  // namespace qp::core
