#pragma once

/// \file grid_layout.hpp
/// Optimal single-source placement for the Grid quorum system under the
/// uniform access strategy (paper Sec 4.1, optimality proof in Appendix B /
/// Thm B.1). The strategy fills a k x k matrix of slot distances in
/// concentric "L-shaped" shells, largest distances in the top-left square.

#include <optional>
#include <utility>
#include <vector>

#include "core/instance.hpp"

namespace qp::core {

struct GridLayoutResult {
  Placement placement;          ///< element (r, c) = id r*k + c -> node
  int k = 0;
  std::vector<double> matrix;   ///< row-major k x k distance matrix M (Fig 2)
  double delay = 0.0;           ///< Delta_f(v0) of the layout

  double cell(int r, int c) const {
    return matrix[static_cast<std::size_t>(r) * static_cast<std::size_t>(k) +
                  static_cast<std::size_t>(c)];
  }
};

/// The order in which matrix cells are filled by the Sec 4.1 strategy:
/// (0,0); then for each l >= 1 the column part (0,l)..(l-1,l) followed by
/// the row part (l,0)..(l,l). Distances are assigned in non-increasing
/// order along this sequence.
std::vector<std::pair<int, int>> grid_shell_fill_order(int k);

/// Computes the optimal grid layout for an SSQPP instance whose quorum
/// system is quorum::grid(k) with the uniform strategy. Capacities are
/// handled by slot expansion (Sec 4.1): nodes with cap below the element
/// load are suppressed, larger nodes replicated.
///
/// Returns std::nullopt when the capacities admit fewer than k^2 slots.
/// \throws std::invalid_argument if the instance's system is not a k x k
///         grid with (near-)uniform strategy.
std::optional<GridLayoutResult> optimal_grid_layout(
    const SsqppInstance& instance, int k);

}  // namespace qp::core
