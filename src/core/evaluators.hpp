#pragma once

/// \file evaluators.hpp
/// Delay and load evaluators implementing the paper's definitions:
///   delta_f(v, Q)  = max_{u in Q} d(v, f(u))                  (eq. 1)
///   Delta_f(v)     = sum_Q p(Q) delta_f(v, Q)                 (eq. 2)
///   gamma_f(v, Q)  = sum_{u in Q} d(v, f(u))                  (Sec 1.2)
///   Gamma_f(v)     = sum_Q p(Q) gamma_f(v, Q)
///   load_f(v)      = sum_{u : f(u) = v} load(u)
/// plus the relay-via-v0 delay of Lemma 3.1 and its optimal relay node.

#include <vector>

#include "core/instance.hpp"

namespace qp::core {

/// delta_f(v, Q): max distance from client v to the placed quorum.
double max_delay(const graph::Metric& metric, const quorum::Quorum& quorum,
                 const Placement& placement, int client);

/// gamma_f(v, Q): total distance from client v to the placed quorum.
double total_delay(const graph::Metric& metric, const quorum::Quorum& quorum,
                   const Placement& placement, int client);

/// Delta_f(v): expected max-delay of client v under the strategy.
double expected_max_delay(const graph::Metric& metric,
                          const quorum::QuorumSystem& system,
                          const quorum::AccessStrategy& strategy,
                          const Placement& placement, int client);

/// Gamma_f(v): expected total-delay of client v under the strategy.
double expected_total_delay(const graph::Metric& metric,
                            const quorum::QuorumSystem& system,
                            const quorum::AccessStrategy& strategy,
                            const Placement& placement, int client);

/// Avg_v [Delta_f(v)] with the instance's client weights (paper obj. 1.1a).
double average_max_delay(const QppInstance& instance,
                         const Placement& placement);

/// Avg_v [Gamma_f(v)] with the instance's client weights (paper Sec 5).
double average_total_delay(const QppInstance& instance,
                           const Placement& placement);

/// Delta_f(v0) for the single-source instance (paper Problem 3.2 objective).
double source_expected_max_delay(const SsqppInstance& instance,
                                 const Placement& placement);

/// Per-node placed load: load_f(v) = sum_{u : f(u) = v} load(u).
std::vector<double> node_loads(const std::vector<double>& element_loads,
                               const Placement& placement, int num_nodes);

/// max_v load_f(v) / cap(v); 0-capacity nodes with positive load yield +inf.
/// A value <= 1 means the placement is capacity-feasible.
double max_capacity_violation(const std::vector<double>& element_loads,
                              const std::vector<double>& capacities,
                              const Placement& placement);

/// True iff load_f(v) <= cap(v) * (1 + tolerance) for every node.
bool is_capacity_feasible(const std::vector<double>& element_loads,
                          const std::vector<double>& capacities,
                          const Placement& placement,
                          double tolerance = 1e-9);

/// Average relay-via-v0 delay (left side of paper eq. (4)):
///   Avg_v [ sum_Q p(Q) (d(v, v0) + delta_f(v0, Q)) ]
/// = Avg_v d(v, v0) + Delta_f(v0)   (paper eq. (8)).
double relay_delay(const QppInstance& instance, const Placement& placement,
                   int relay_node);

/// The node v0 = argmin_v Delta_f(v) from Lemma 3.1's proof. Guaranteed to
/// satisfy relay_delay(instance, f, v0) <= 5 * average_max_delay(instance, f).
int best_relay_node(const QppInstance& instance, const Placement& placement);

/// min_Q delta_f(v, Q): the distance from client v to its CLOSEST placed
/// quorum -- the objective of the prior work the paper discusses in Sec 2
/// (Fu 97, Kobayashi et al. 01, Lin 01). Free choice of quorum concentrates
/// load; see also sim::SelectionPolicy::kNearestQuorum.
double closest_quorum_delay(const graph::Metric& metric,
                            const quorum::QuorumSystem& system,
                            const Placement& placement, int client);

/// Avg_v [min_Q delta_f(v, Q)] with the instance's client weights -- the
/// Kobayashi/Lin objective evaluated for one of our placements.
double average_closest_quorum_delay(const QppInstance& instance,
                                    const Placement& placement);

}  // namespace qp::core
