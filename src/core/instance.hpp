#pragma once

/// \file instance.hpp
/// Problem instances for the paper's two placement problems:
///  - QppInstance: the Quorum Placement Problem (paper Problem 1.1), where
///    every network node is a client;
///  - SsqppInstance: the Single-Source QPP (paper Problem 3.2), where one
///    designated node v0 issues all accesses.
/// A placement is the map f : U -> V (paper Sec 1.2), represented as a
/// vector indexed by element id.

#include <cstdint>
#include <string>
#include <vector>

#include "check/contracts.hpp"
#include "graph/metric.hpp"
#include "quorum/quorum_system.hpp"

namespace qp::core {

/// f : U -> V; placement[u] is the node hosting element u.
using Placement = std::vector<int>;

/// Paper Problem 1.1. Client weights generalize the uniform-rate assumption
/// (paper Sec 6): objective is the weighted average of per-client delays.
class QppInstance {
 public:
  /// Uniform client rates.
  QppInstance(graph::Metric metric, std::vector<double> capacities,
              quorum::QuorumSystem system, quorum::AccessStrategy strategy);

  /// Arbitrary non-negative client rates (normalized internally).
  QppInstance(graph::Metric metric, std::vector<double> capacities,
              quorum::QuorumSystem system, quorum::AccessStrategy strategy,
              std::vector<double> client_weights);

  const graph::Metric& metric() const { return metric_; }
  int num_nodes() const { return metric_.num_points(); }
  /// Hot path (solver inner loops): unchecked indexing, bounds guarded by
  /// the contract in Debug builds.
  double capacity(int v) const {
    QP_REQUIRE(v >= 0 && v < num_nodes(), "node id out of range");
    return capacities_[static_cast<std::size_t>(v)];
  }
  const std::vector<double>& capacities() const { return capacities_; }
  const quorum::QuorumSystem& system() const { return system_; }
  const quorum::AccessStrategy& strategy() const { return strategy_; }
  /// Normalized client weights (sum to 1).
  const std::vector<double>& client_weights() const { return client_weights_; }
  /// Element loads induced by (system, strategy).
  const std::vector<double>& element_loads() const { return element_loads_; }

 private:
  void validate();

  graph::Metric metric_;
  std::vector<double> capacities_;
  quorum::QuorumSystem system_;
  quorum::AccessStrategy strategy_;
  std::vector<double> client_weights_;
  std::vector<double> element_loads_;
};

/// Paper Problem 3.2: only node `source` issues accesses, with strategy p0.
class SsqppInstance {
 public:
  SsqppInstance(graph::Metric metric, std::vector<double> capacities,
                quorum::QuorumSystem system, quorum::AccessStrategy strategy,
                int source);

  const graph::Metric& metric() const { return metric_; }
  int num_nodes() const { return metric_.num_points(); }
  /// Hot path (solver inner loops): unchecked indexing, bounds guarded by
  /// the contract in Debug builds.
  double capacity(int v) const {
    QP_REQUIRE(v >= 0 && v < num_nodes(), "node id out of range");
    return capacities_[static_cast<std::size_t>(v)];
  }
  const std::vector<double>& capacities() const { return capacities_; }
  const quorum::QuorumSystem& system() const { return system_; }
  const quorum::AccessStrategy& strategy() const { return strategy_; }
  int source() const { return source_; }
  const std::vector<double>& element_loads() const { return element_loads_; }

 private:
  graph::Metric metric_;
  std::vector<double> capacities_;
  quorum::QuorumSystem system_;
  quorum::AccessStrategy strategy_;
  int source_ = 0;
  std::vector<double> element_loads_;
};

/// True iff placement maps every element to a valid node id.
bool is_valid_placement(const Placement& placement, int universe_size,
                        int num_nodes);

/// Order-sensitive FNV-1a content digest over every defining datum of the
/// instance: the full distance matrix, capacities, quorum membership,
/// access-strategy probabilities and client weights (doubles are hashed by
/// bit pattern, so the digest is exact, not tolerance-based). Two runs over
/// the same instance always agree; observability artifacts (run reports,
/// access logs -- docs/OBSERVABILITY.md) embed it so `qplace analyze` can
/// refuse to compare artifacts from different instances.
std::uint64_t instance_digest(const QppInstance& instance);

/// instance_digest() rendered as 16 lowercase hex digits.
std::string instance_digest_hex(const QppInstance& instance);

}  // namespace qp::core
