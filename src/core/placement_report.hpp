#pragma once

/// \file placement_report.hpp
/// One-call evaluation bundle: every quality metric of a placement against
/// a QPP instance. Used by the CLI, examples and experiment harness so
/// evaluation logic lives in one place.

#include <string>

#include "core/instance.hpp"

namespace qp::core {

struct PlacementReport {
  double average_max_delay = 0.0;        ///< Avg_v Delta_f(v) (Problem 1.1)
  double average_total_delay = 0.0;      ///< Avg_v Gamma_f(v) (Sec 5)
  double average_closest_delay = 0.0;    ///< Avg_v min_Q delta (Sec 2 works)
  double worst_client_max_delay = 0.0;   ///< max_v Delta_f(v)
  double max_load = 0.0;                 ///< max_v load_f(v)
  double max_capacity_violation = 0.0;   ///< max_v load_f(v)/cap(v)
  bool capacity_feasible = false;        ///< load_f(v) <= cap(v) everywhere
  int distinct_nodes_used = 0;           ///< |f(U)| -- dispersion indicator
  int best_relay = 0;                    ///< argmin_v Delta_f(v) (Lemma 3.1)
  double relay_delay = 0.0;              ///< relay-via-best_relay delay

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

/// Evaluates all metrics. \throws std::invalid_argument on an invalid
/// placement.
PlacementReport evaluate_placement(const QppInstance& instance,
                                   const Placement& placement);

}  // namespace qp::core
