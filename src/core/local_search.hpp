#pragma once

/// \file local_search.hpp
/// Capacity-feasible local search over placements: element moves and pair
/// swaps, first-improvement descent. Not part of the paper's algorithms --
/// it serves as (a) a practical post-optimizer for the rounded placements
/// and (b) an unprincipled baseline the experiment harness contrasts the
/// approximation guarantees against.

#include <optional>
#include <random>

#include "core/instance.hpp"

namespace qp::core {

struct LocalSearchOptions {
  int max_moves = 10000;     ///< improvement steps before giving up
  bool allow_moves = true;   ///< single-element relocations
  bool allow_swaps = true;   ///< pairwise element swaps
  double min_gain = 1e-12;   ///< improvements below this are ignored
};

struct LocalSearchResult {
  Placement placement;
  double delay = 0.0;  ///< objective of the final placement
  int moves = 0;       ///< accepted improvement steps
};

/// Descends Avg_v Delta_f(v) from `start` (which must be capacity-feasible;
/// the search preserves feasibility). \throws std::invalid_argument if
/// start is invalid or infeasible.
LocalSearchResult local_search_max_delay(const QppInstance& instance,
                                         Placement start,
                                         const LocalSearchOptions& options = {});

/// Same descent for the total-delay objective Avg_v Gamma_f(v).
LocalSearchResult local_search_total_delay(
    const QppInstance& instance, Placement start,
    const LocalSearchOptions& options = {});

/// A random capacity-feasible placement (heaviest elements placed first on
/// uniformly drawn nodes with remaining room). std::nullopt after an
/// internal retry budget -- capacities may admit no placement at all, or
/// only placements random sampling cannot find.
std::optional<Placement> random_feasible_placement(const QppInstance& instance,
                                                   std::mt19937_64& rng);

}  // namespace qp::core
