#pragma once

/// \file qpp_solver.hpp
/// The paper's main algorithm (Thm 1.2): for each candidate relay node v0,
/// solve the Single-Source QPP approximately (Thm 3.7) and keep the
/// placement with the best full-QPP average max-delay. By Thm 3.3 the result
/// is a 5 * alpha/(alpha-1) approximation with load <= (alpha+1) * cap.

#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/ssqpp_solver.hpp"

namespace qp::core {

struct QppResult {
  Placement placement;
  int chosen_source = -1;        ///< the v0 whose SSQPP solution won
  double average_delay = 0.0;    ///< Avg_v Delta_f(v) of the placement
  double load_violation = 0.0;   ///< max_v load_f(v)/cap(v); bound: alpha + 1
  double best_lp_bound = 0.0;    ///< max over tried v0 of Z*(v0): each Z*(v0)
                                 ///< lower-bounds Delta_{f*}(v0) for that v0
};

struct QppSolveOptions {
  double alpha = 2.0;
  /// Candidate relay nodes to try; empty = all nodes (the paper's choice --
  /// "we can run the SSQPP algorithm with each node in V").
  std::vector<int> candidate_sources;
  /// When candidate_sources is empty and this is positive, try only the
  /// max_candidates nodes with the smallest total distance to all clients
  /// (1-median order) instead of all n. A practical speed knob: the
  /// theoretical 5 beta guarantee needs all nodes, but low-distance-sum
  /// nodes are where good relays live (cf. experiment E10a).
  int max_candidates = 0;
  lp::SimplexOptions simplex;
};

/// Thm 1.2 solver. Returns std::nullopt if no candidate source admits a
/// fractional capacity-respecting placement.
std::optional<QppResult> solve_qpp(const QppInstance& instance,
                                   const QppSolveOptions& options = {});

/// Helper: the single-source instance induced by a QPP instance and a
/// candidate relay node (the access strategy p0 is the instance strategy;
/// see paper Sec 6 for the per-client-strategy generalization).
SsqppInstance single_source_view(const QppInstance& instance, int source);

}  // namespace qp::core
