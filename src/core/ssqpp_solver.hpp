#pragma once

/// \file ssqpp_solver.hpp
/// The paper's approximation algorithm for the Single-Source Quorum
/// Placement Problem (Thm 3.7 / 3.12): solve LP (9)-(14), alpha-filter the
/// fractional solution (Sec 3.3.1), view it as a fractional GAP solution and
/// round with Shmoys-Tardos. Guarantees, for any alpha > 1:
///   Delta_f(v0) <= (alpha / (alpha - 1)) * Z*  <= (alpha/(alpha-1)) * OPT,
///   load_f(v)   <= (alpha + 1) * cap(v).

#include <optional>

#include "core/instance.hpp"
#include "core/ssqpp_lp.hpp"

namespace qp::core {

struct SsqppResult {
  Placement placement;
  double lp_objective = 0.0;     ///< Z*, a lower bound on OPT
  double delay = 0.0;            ///< achieved Delta_f(v0)
  double delay_bound = 0.0;      ///< (alpha/(alpha-1)) * Z*
  double load_violation = 0.0;   ///< max_v load_f(v)/cap(v); bound: alpha + 1
};

/// Runs the Thm 3.7 pipeline. Returns std::nullopt when the LP itself is
/// infeasible (no capacity-respecting fractional placement exists).
/// \throws std::invalid_argument unless alpha > 1.
std::optional<SsqppResult> solve_ssqpp(const SsqppInstance& instance,
                                       double alpha = 2.0,
                                       const lp::SimplexOptions& options = {});

/// Rounding stage only: converts an alpha-filtered fractional solution into
/// a placement via GAP (machines = nodes, jobs = elements, budgets
/// T_t = alpha * cap(v_t)). Exposed separately for tests and ablations.
std::optional<Placement> round_filtered_ssqpp(const SsqppInstance& instance,
                                              const FractionalSsqpp& filtered,
                                              double alpha);

/// Baseline for ablation benches: place every element greedily on the
/// nearest node (by d(v0, .)) with remaining capacity; no delay guarantee.
std::optional<Placement> greedy_nearest_placement(const SsqppInstance& instance);

}  // namespace qp::core
