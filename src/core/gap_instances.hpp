#pragma once

/// \file gap_instances.hpp
/// The two integrality-gap constructions of paper Appendix A (Claim A.1)
/// for LP (9)-(14). Both use a single quorum containing the whole universe
/// and unit loads/capacities, so every node must host exactly one element
/// and the unique integral delay equals the largest distance from v0, while
/// the fractional optimum spreads mass and stays near the average distance.

#include "core/instance.hpp"

namespace qp::core {

struct GapConstruction {
  SsqppInstance instance;
  double integral_optimum = 0.0;  ///< Delta_f(v0) of every integral placement
  double gap_lower_bound = 0.0;   ///< claimed asymptotic gap (n or ~sqrt(n))
};

/// General-metric instance: n - 1 nodes at distance 1 from v0 except one at
/// distance M >> 1 (star metric). Integral optimum M; LP ~ (n - 2 + M)/n,
/// so the gap approaches n as M grows. (Claim A.1, first construction.)
/// \throws std::invalid_argument unless n >= 2 and M > 1.
GapConstruction general_metric_gap_instance(int n, double m_distance);

/// Unweighted-graph instance on the Figure 1 "broom" graph with n = k^2
/// nodes: integral optimum k, LP ~ 3/2, gap ~ (2/3) sqrt(n).
/// (Claim A.1, second construction.)
/// \throws std::invalid_argument unless k >= 2.
GapConstruction broom_gap_instance(int k);

}  // namespace qp::core
