#pragma once

/// \file total_delay.hpp
/// The total-delay Quorum Placement Problem (paper Sec 5, Thm 5.1 / 1.4).
/// Because Gamma_f(v) = sum_u load(u) d(v, f(u)) separates per element, the
/// problem maps directly to GAP with cost
///   c_{vu} = load(u) * (weighted) average distance from clients to v,
/// load p_{vu} = load(u) and budget T_v = cap(v). Shmoys-Tardos rounding
/// yields Avg_v Gamma_f(v) <= OPT with load_f(v) <= 2 cap(v).

#include <optional>

#include "core/instance.hpp"

namespace qp::core {

struct TotalDelayResult {
  Placement placement;
  double average_delay = 0.0;    ///< achieved Avg_v Gamma_f(v)
  double lp_objective = 0.0;     ///< GAP LP optimum, lower bound on the
                                 ///< capacity-feasible OPT
  double load_violation = 0.0;   ///< max_v load_f(v)/cap(v); bound: 2
};

/// Thm 5.1 solver. Returns std::nullopt when even the fractional relaxation
/// is infeasible (total element load exceeds total capacity, or some element
/// fits nowhere).
std::optional<TotalDelayResult> solve_total_delay(const QppInstance& instance);

}  // namespace qp::core
