#pragma once

/// \file majority_layout.hpp
/// Single-source placement for Majority/threshold quorum systems under the
/// uniform access strategy (paper Sec 4.2). Every load-respecting placement
/// of the n elements on a fixed multiset of slots has the same expected
/// delay, given in closed form by paper eq. (19); the layout simply packs
/// elements onto the n nearest capacity slots.

#include <optional>
#include <vector>

#include "core/instance.hpp"

namespace qp::core {

/// Paper eq. (19): expected max-delay from the source when the n elements
/// occupy slots at distances \p slot_distances (any order), for the
/// threshold-t system with the uniform strategy over all C(n, t) quorums:
///     (1 / C(n,t)) * sum_{i=1}^{n-t+1} tau_i * C(n-i, t-1),
/// where tau_1 >= ... >= tau_n sorts the distances decreasingly.
/// \throws std::invalid_argument unless 1 <= t <= n = slot_distances.size()
///         and 2t > n.
double majority_delay_formula(std::vector<double> slot_distances, int t);

struct MajorityLayoutResult {
  Placement placement;
  double delay = 0.0;          ///< measured Delta_f(v0)
  double formula_delay = 0.0;  ///< eq. (19) prediction (equal up to fp error)
};

/// Places the n elements of a threshold-t system (uniform strategy) on the
/// n nearest capacity slots. Optimal among capacity-respecting placements:
/// by Sec 4.2 the delay depends only on the multiset of slot distances, and
/// eq. (19) is monotone in each tau_i, so nearest slots are best.
/// Returns std::nullopt if the capacities admit fewer than n slots.
/// \throws std::invalid_argument if the system is not threshold-t with the
///         uniform strategy.
std::optional<MajorityLayoutResult> majority_layout(
    const SsqppInstance& instance, int t);

}  // namespace qp::core
