#include "core/instance.hpp"

#include <cmath>
#include <stdexcept>

namespace qp::core {

namespace {

void check_capacities(const std::vector<double>& capacities, int num_nodes) {
  if (static_cast<int>(capacities.size()) != num_nodes) {
    throw std::invalid_argument("instance: one capacity per node required");
  }
  for (double c : capacities) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument("instance: capacities must be finite, >= 0");
    }
  }
}

std::vector<double> normalized_weights(std::vector<double> weights, int n) {
  if (static_cast<int>(weights.size()) != n) {
    throw std::invalid_argument("instance: one client weight per node required");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("instance: client weights must be >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("instance: client weights must not all be zero");
  }
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

QppInstance::QppInstance(graph::Metric metric, std::vector<double> capacities,
                         quorum::QuorumSystem system,
                         quorum::AccessStrategy strategy)
    : metric_(std::move(metric)),
      capacities_(std::move(capacities)),
      system_(std::move(system)),
      strategy_(std::move(strategy)),
      client_weights_(static_cast<std::size_t>(metric_.num_points()),
                      metric_.num_points() > 0 ? 1.0 / metric_.num_points()
                                               : 0.0) {
  validate();
  element_loads_ = quorum::element_loads(system_, strategy_);
}

QppInstance::QppInstance(graph::Metric metric, std::vector<double> capacities,
                         quorum::QuorumSystem system,
                         quorum::AccessStrategy strategy,
                         std::vector<double> client_weights)
    : metric_(std::move(metric)),
      capacities_(std::move(capacities)),
      system_(std::move(system)),
      strategy_(std::move(strategy)),
      client_weights_(
          normalized_weights(std::move(client_weights), metric_.num_points())) {
  validate();
  element_loads_ = quorum::element_loads(system_, strategy_);
}

void QppInstance::validate() {
  check_capacities(capacities_, metric_.num_points());
  if (strategy_.num_quorums() != system_.num_quorums()) {
    throw std::invalid_argument("QppInstance: strategy/system mismatch");
  }
}

SsqppInstance::SsqppInstance(graph::Metric metric,
                             std::vector<double> capacities,
                             quorum::QuorumSystem system,
                             quorum::AccessStrategy strategy, int source)
    : metric_(std::move(metric)),
      capacities_(std::move(capacities)),
      system_(std::move(system)),
      strategy_(std::move(strategy)),
      source_(source) {
  check_capacities(capacities_, metric_.num_points());
  if (strategy_.num_quorums() != system_.num_quorums()) {
    throw std::invalid_argument("SsqppInstance: strategy/system mismatch");
  }
  if (source_ < 0 || source_ >= metric_.num_points()) {
    throw std::invalid_argument("SsqppInstance: source out of range");
  }
  element_loads_ = quorum::element_loads(system_, strategy_);
}

bool is_valid_placement(const Placement& placement, int universe_size,
                        int num_nodes) {
  if (static_cast<int>(placement.size()) != universe_size) return false;
  for (int v : placement) {
    if (v < 0 || v >= num_nodes) return false;
  }
  return true;
}

}  // namespace qp::core
