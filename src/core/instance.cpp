#include "core/instance.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace qp::core {

namespace {

void check_capacities(const std::vector<double>& capacities, int num_nodes) {
  if (static_cast<int>(capacities.size()) != num_nodes) {
    throw std::invalid_argument("instance: one capacity per node required");
  }
  for (double c : capacities) {
    if (!(c >= 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument("instance: capacities must be finite, >= 0");
    }
  }
}

std::vector<double> normalized_weights(std::vector<double> weights, int n) {
  if (static_cast<int>(weights.size()) != n) {
    throw std::invalid_argument("instance: one client weight per node required");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument("instance: client weights must be >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("instance: client weights must not all be zero");
  }
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

QppInstance::QppInstance(graph::Metric metric, std::vector<double> capacities,
                         quorum::QuorumSystem system,
                         quorum::AccessStrategy strategy)
    : metric_(std::move(metric)),
      capacities_(std::move(capacities)),
      system_(std::move(system)),
      strategy_(std::move(strategy)),
      client_weights_(static_cast<std::size_t>(metric_.num_points()),
                      metric_.num_points() > 0 ? 1.0 / metric_.num_points()
                                               : 0.0) {
  validate();
  element_loads_ = quorum::element_loads(system_, strategy_);
}

QppInstance::QppInstance(graph::Metric metric, std::vector<double> capacities,
                         quorum::QuorumSystem system,
                         quorum::AccessStrategy strategy,
                         std::vector<double> client_weights)
    : metric_(std::move(metric)),
      capacities_(std::move(capacities)),
      system_(std::move(system)),
      strategy_(std::move(strategy)),
      client_weights_(
          normalized_weights(std::move(client_weights), metric_.num_points())) {
  validate();
  element_loads_ = quorum::element_loads(system_, strategy_);
}

void QppInstance::validate() {
  check_capacities(capacities_, metric_.num_points());
  if (strategy_.num_quorums() != system_.num_quorums()) {
    throw std::invalid_argument("QppInstance: strategy/system mismatch");
  }
}

SsqppInstance::SsqppInstance(graph::Metric metric,
                             std::vector<double> capacities,
                             quorum::QuorumSystem system,
                             quorum::AccessStrategy strategy, int source)
    : metric_(std::move(metric)),
      capacities_(std::move(capacities)),
      system_(std::move(system)),
      strategy_(std::move(strategy)),
      source_(source) {
  check_capacities(capacities_, metric_.num_points());
  if (strategy_.num_quorums() != system_.num_quorums()) {
    throw std::invalid_argument("SsqppInstance: strategy/system mismatch");
  }
  if (source_ < 0 || source_ >= metric_.num_points()) {
    throw std::invalid_argument("SsqppInstance: source out of range");
  }
  element_loads_ = quorum::element_loads(system_, strategy_);
}

namespace {

/// FNV-1a 64-bit, folded over typed field streams below.
class Fnv1a {
 public:
  void mix(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (value >> (8 * byte)) & 0xFFU;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void mix(int value) { mix(static_cast<std::uint64_t>(value)); }
  void mix(double value) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace

std::uint64_t instance_digest(const QppInstance& instance) {
  Fnv1a fnv;
  const int n = instance.num_nodes();
  fnv.mix(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      fnv.mix(instance.metric()(i, j));
    }
  }
  for (double cap : instance.capacities()) fnv.mix(cap);
  fnv.mix(instance.system().universe_size());
  fnv.mix(instance.system().num_quorums());
  for (const quorum::Quorum& q : instance.system().quorums()) {
    fnv.mix(static_cast<int>(q.size()));
    for (int element : q) fnv.mix(element);
  }
  for (int q = 0; q < instance.strategy().num_quorums(); ++q) {
    fnv.mix(instance.strategy().probability(q));
  }
  for (double w : instance.client_weights()) fnv.mix(w);
  return fnv.value();
}

std::string instance_digest_hex(const QppInstance& instance) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(instance_digest(instance)));
  return buf;
}

bool is_valid_placement(const Placement& placement, int universe_size,
                        int num_nodes) {
  if (static_cast<int>(placement.size()) != universe_size) return false;
  for (int v : placement) {
    if (v < 0 || v >= num_nodes) return false;
  }
  return true;
}

}  // namespace qp::core
