#include "core/placement_report.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/evaluators.hpp"

namespace qp::core {

PlacementReport evaluate_placement(const QppInstance& instance,
                                   const Placement& placement) {
  PlacementReport report;
  report.average_max_delay = average_max_delay(instance, placement);
  report.average_total_delay = average_total_delay(instance, placement);
  report.average_closest_delay =
      average_closest_quorum_delay(instance, placement);
  for (int v = 0; v < instance.num_nodes(); ++v) {
    report.worst_client_max_delay = std::max(
        report.worst_client_max_delay,
        expected_max_delay(instance.metric(), instance.system(),
                           instance.strategy(), placement, v));
  }
  const std::vector<double> loads = node_loads(
      instance.element_loads(), placement, instance.num_nodes());
  report.max_load = loads.empty()
                        ? 0.0
                        : *std::max_element(loads.begin(), loads.end());
  report.max_capacity_violation = max_capacity_violation(
      instance.element_loads(), instance.capacities(), placement);
  report.capacity_feasible = is_capacity_feasible(
      instance.element_loads(), instance.capacities(), placement);
  report.distinct_nodes_used = static_cast<int>(
      std::set<int>(placement.begin(), placement.end()).size());
  report.best_relay = best_relay_node(instance, placement);
  report.relay_delay = relay_delay(instance, placement, report.best_relay);
  return report;
}

std::string PlacementReport::to_string() const {
  std::ostringstream os;
  os << "avg max-delay        : " << average_max_delay << '\n'
     << "avg total-delay      : " << average_total_delay << '\n'
     << "avg closest-Q delay  : " << average_closest_delay << '\n'
     << "worst client delay   : " << worst_client_max_delay << '\n'
     << "max node load        : " << max_load << '\n'
     << "max load/cap         : " << max_capacity_violation
     << (capacity_feasible ? "  (feasible)" : "  (VIOLATED)") << '\n'
     << "distinct nodes used  : " << distinct_nodes_used << '\n'
     << "best relay / delay   : v" << best_relay << " / " << relay_delay
     << '\n';
  return os.str();
}

}  // namespace qp::core
