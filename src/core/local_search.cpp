#include "core/local_search.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "core/evaluators.hpp"
#include "exec/parallel.hpp"
#include "obs/obs.hpp"

namespace qp::core {

namespace {

constexpr double kCapacityTolerance = 1e-9;

/// Grain for neighborhood scoring: most indices fail the cheap feasibility
/// test, so chunks must hold enough of them to amortize dispatch.
constexpr std::size_t kNeighborhoodGrain = 16;

/// A scored candidate step: `index` encodes the move in the canonical scan
/// order, `objective` is the instance objective after applying it.
struct ScoredStep {
  std::size_t index = 0;
  double objective = 0.0;
};

/// Shared first-improvement descent over moves and swaps.
LocalSearchResult descend(
    const QppInstance& instance, Placement placement,
    const LocalSearchOptions& options,
    const std::function<double(const Placement&)>& objective) {
  const int num_elements = instance.system().universe_size();
  const int num_nodes = instance.num_nodes();
  const std::vector<double>& loads = instance.element_loads();

  if (!is_valid_placement(placement, num_elements, num_nodes)) {
    throw std::invalid_argument("local_search: invalid start placement");
  }
  if (!is_capacity_feasible(loads, instance.capacities(), placement)) {
    throw std::invalid_argument("local_search: start placement infeasible");
  }

  std::vector<double> node_load =
      node_loads(loads, placement, num_nodes);
  double current = objective(placement);
  int moves = 0;

  // First-improvement descent, neighborhood scoring on the thread pool.
  // Each chunk scans its slice of the canonical (u, to) / (a, b) order with
  // a private trial placement and reports the first improving step;
  // exec::parallel_find_first keeps the lowest-indexed hit, which is exactly
  // the step a sequential scan with early exit would have taken, so the
  // descent trajectory is bit-identical for any thread count.
  const auto scan_moves = [&](std::size_t begin,
                              std::size_t end) -> std::optional<ScoredStep> {
    Placement trial = placement;
    for (std::size_t i = begin; i < end; ++i) {
      const auto u = static_cast<std::size_t>(i / static_cast<std::size_t>(num_nodes));
      const int to = static_cast<int>(i % static_cast<std::size_t>(num_nodes));
      const int from = trial[u];
      if (to == from) continue;
      if (node_load[static_cast<std::size_t>(to)] + loads[u] >
          instance.capacity(to) + kCapacityTolerance) {
        continue;
      }
      trial[u] = to;
      const double candidate = objective(trial);
      trial[u] = from;
      if (candidate < current - options.min_gain) {
        return ScoredStep{i, candidate};
      }
    }
    return std::nullopt;
  };

  const auto scan_swaps = [&](std::size_t begin,
                              std::size_t end) -> std::optional<ScoredStep> {
    Placement trial = placement;
    for (std::size_t i = begin; i < end; ++i) {
      const auto a = static_cast<std::size_t>(i / static_cast<std::size_t>(num_elements));
      const auto b = static_cast<std::size_t>(i % static_cast<std::size_t>(num_elements));
      if (b <= a) continue;
      const int node_a = trial[a];
      const int node_b = trial[b];
      if (node_a == node_b) continue;
      const double load_a = loads[a];
      const double load_b = loads[b];
      // Feasibility after swapping a -> node_b, b -> node_a.
      if (node_load[static_cast<std::size_t>(node_b)] - load_b + load_a >
              instance.capacity(node_b) + kCapacityTolerance ||
          node_load[static_cast<std::size_t>(node_a)] - load_a + load_b >
              instance.capacity(node_a) + kCapacityTolerance) {
        continue;
      }
      trial[a] = node_b;
      trial[b] = node_a;
      const double candidate = objective(trial);
      trial[a] = node_a;
      trial[b] = node_b;
      if (candidate < current - options.min_gain) {
        return ScoredStep{i, candidate};
      }
    }
    return std::nullopt;
  };

  // All counters and the objective series below live in this sequential
  // driver loop. Never count inside scan_moves/scan_swaps: parallel_find_first
  // may skip chunks past an already-found hit depending on timing, so any
  // tally inside the scan callbacks would be thread-count dependent.
  QP_SPAN("local_search.descend");
  QP_SERIES_APPEND("local_search.objective", current);
  bool improved = true;
  while (improved && moves < options.max_moves) {
    improved = false;
    QP_COUNTER_ADD("local_search.rounds", 1);
    // Single-element moves.
    if (options.allow_moves) {
      const std::optional<ScoredStep> step =
          exec::parallel_find_first<ScoredStep>(
              static_cast<std::size_t>(num_elements) *
                  static_cast<std::size_t>(num_nodes),
              kNeighborhoodGrain, scan_moves);
      if (step) {
        const auto u = static_cast<std::size_t>(
            step->index / static_cast<std::size_t>(num_nodes));
        const int to = static_cast<int>(step->index %
                                        static_cast<std::size_t>(num_nodes));
        const int from = placement[u];
        placement[u] = to;
        current = step->objective;
        node_load[static_cast<std::size_t>(from)] -= loads[u];
        node_load[static_cast<std::size_t>(to)] += loads[u];
        ++moves;
        improved = true;
        QP_COUNTER_ADD("local_search.moves_taken", 1);
        QP_SERIES_APPEND("local_search.objective", current);
      }
    }
    // Pairwise swaps.
    if (options.allow_swaps && !improved) {
      const std::optional<ScoredStep> step =
          exec::parallel_find_first<ScoredStep>(
              static_cast<std::size_t>(num_elements) *
                  static_cast<std::size_t>(num_elements),
              kNeighborhoodGrain, scan_swaps);
      if (step) {
        const auto a = static_cast<std::size_t>(
            step->index / static_cast<std::size_t>(num_elements));
        const auto b = static_cast<std::size_t>(
            step->index % static_cast<std::size_t>(num_elements));
        const int node_a = placement[a];
        const int node_b = placement[b];
        placement[a] = node_b;
        placement[b] = node_a;
        current = step->objective;
        node_load[static_cast<std::size_t>(node_a)] +=
            loads[b] - loads[a];
        node_load[static_cast<std::size_t>(node_b)] +=
            loads[a] - loads[b];
        ++moves;
        improved = true;
        QP_COUNTER_ADD("local_search.swaps_taken", 1);
        QP_SERIES_APPEND("local_search.objective", current);
      }
    }
  }
  QP_INVARIANT(
      check::validate_placement(instance, placement, {1.0, 1e-6}).ok(),
      "local search must preserve capacity feasibility");
  QP_INVARIANT(current <= objective(placement) + 1e-9,
               "cached objective must match the final placement");
  return {std::move(placement), current, moves};
}

}  // namespace

LocalSearchResult local_search_max_delay(const QppInstance& instance,
                                         Placement start,
                                         const LocalSearchOptions& options) {
  return descend(instance, std::move(start), options,
                 [&instance](const Placement& f) {
                   return average_max_delay(instance, f);
                 });
}

LocalSearchResult local_search_total_delay(const QppInstance& instance,
                                           Placement start,
                                           const LocalSearchOptions& options) {
  return descend(instance, std::move(start), options,
                 [&instance](const Placement& f) {
                   return average_total_delay(instance, f);
                 });
}

std::optional<Placement> random_feasible_placement(const QppInstance& instance,
                                                   std::mt19937_64& rng) {
  const int num_elements = instance.system().universe_size();
  const int num_nodes = instance.num_nodes();
  const std::vector<double>& loads = instance.element_loads();

  std::vector<int> order(static_cast<std::size_t>(num_elements));
  for (int u = 0; u < num_elements; ++u) order[static_cast<std::size_t>(u)] = u;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return loads[static_cast<std::size_t>(a)] > loads[static_cast<std::size_t>(b)];
  });

  constexpr int kAttempts = 200;
  std::uniform_int_distribution<int> pick(0, num_nodes - 1);
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    std::vector<double> remaining = instance.capacities();
    Placement placement(static_cast<std::size_t>(num_elements), -1);
    bool ok = true;
    for (int u : order) {
      int node = -1;
      // A few random probes, then fall back to the first node that fits.
      for (int probe = 0; probe < 2 * num_nodes; ++probe) {
        const int candidate = pick(rng);
        if (remaining[static_cast<std::size_t>(candidate)] +
                kCapacityTolerance >=
            loads[static_cast<std::size_t>(u)]) {
          node = candidate;
          break;
        }
      }
      if (node < 0) {
        for (int candidate = 0; candidate < num_nodes; ++candidate) {
          if (remaining[static_cast<std::size_t>(candidate)] +
                  kCapacityTolerance >=
              loads[static_cast<std::size_t>(u)]) {
            node = candidate;
            break;
          }
        }
      }
      if (node < 0) {
        ok = false;
        break;
      }
      remaining[static_cast<std::size_t>(node)] -=
          loads[static_cast<std::size_t>(u)];
      placement[static_cast<std::size_t>(u)] = node;
    }
    if (ok) {
      QP_INVARIANT(
          check::validate_placement(instance, placement, {1.0, 1e-6}).ok(),
          "random restart must only return capacity-feasible placements");
      return placement;
    }
  }
  return std::nullopt;
}

}  // namespace qp::core
