#include "core/total_delay.hpp"

#include "assign/gap.hpp"
#include "core/evaluators.hpp"

namespace qp::core {

std::optional<TotalDelayResult> solve_total_delay(const QppInstance& instance) {
  const int n = instance.num_nodes();
  const int num_elements = instance.system().universe_size();
  const std::vector<double>& loads = instance.element_loads();

  // Weighted average distance from all clients to each node v.
  std::vector<double> average_distance(static_cast<std::size_t>(n), 0.0);
  for (int v = 0; v < n; ++v) {
    double total = 0.0;
    for (int client = 0; client < n; ++client) {
      total += instance.client_weights()[static_cast<std::size_t>(client)] *
               instance.metric()(client, v);
    }
    average_distance[static_cast<std::size_t>(v)] = total;
  }

  assign::GapInstance gap(num_elements, n);
  for (int v = 0; v < n; ++v) {
    gap.set_capacity(v, instance.capacity(v));
    for (int u = 0; u < num_elements; ++u) {
      // Contribution of placing u on v to Avg_v' Gamma(v') (paper Sec 5).
      gap.set_cost(v, u,
                   loads[static_cast<std::size_t>(u)] *
                       average_distance[static_cast<std::size_t>(v)]);
      gap.set_load(v, u, loads[static_cast<std::size_t>(u)]);
    }
  }

  const assign::FractionalGap fractional = assign::solve_gap_lp(gap);
  const std::optional<assign::GapAssignment> rounded =
      assign::shmoys_tardos_round(gap, fractional);
  if (!rounded) return std::nullopt;

  TotalDelayResult result;
  result.placement.resize(static_cast<std::size_t>(num_elements));
  for (int u = 0; u < num_elements; ++u) {
    result.placement[static_cast<std::size_t>(u)] =
        rounded->job_to_machine[static_cast<std::size_t>(u)];
  }
  result.lp_objective = fractional.objective;
  result.average_delay = average_total_delay(instance, result.placement);
  result.load_violation = max_capacity_violation(
      instance.element_loads(), instance.capacities(), result.placement);
  return result;
}

}  // namespace qp::core
