#include "core/exact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "check/contracts.hpp"

namespace qp::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kCapacityTolerance = 1e-9;

/// Shared branch-and-bound scaffolding. Elements are assigned in decreasing
/// load order (tightens capacity pruning); `Objective` tracks the partial
/// cost incrementally and must be monotone non-decreasing in assignments.
template <typename Objective>
std::optional<ExactResult> branch_and_bound(
    const graph::Metric& metric, const std::vector<double>& capacities,
    const std::vector<double>& element_loads, Objective& objective,
    const ExactOptions& options) {
  const int num_elements = static_cast<int>(element_loads.size());
  const int num_nodes = metric.num_points();

  std::vector<int> element_order(static_cast<std::size_t>(num_elements));
  for (int u = 0; u < num_elements; ++u) {
    element_order[static_cast<std::size_t>(u)] = u;
  }
  std::sort(element_order.begin(), element_order.end(), [&](int a, int b) {
    return element_loads[static_cast<std::size_t>(a)] >
           element_loads[static_cast<std::size_t>(b)];
  });

  std::vector<double> remaining = capacities;
  Placement current(static_cast<std::size_t>(num_elements), -1);
  ExactResult best;
  best.delay = kInf;
  std::uint64_t states = 0;

  // Iterative DFS with explicit recursion to keep the scaffold simple.
  const auto recurse = [&](auto&& self, int depth) -> void {
    if (++states > options.max_states) {
      throw std::runtime_error("exact solver: state budget exceeded");
    }
    if (depth == num_elements) {
      if (objective.partial_cost() < best.delay) {
        best.delay = objective.partial_cost();
        best.placement = current;
      }
      return;
    }
    const int u = element_order[static_cast<std::size_t>(depth)];
    const double load = element_loads[static_cast<std::size_t>(u)];
    for (int v = 0; v < num_nodes; ++v) {
      if (remaining[static_cast<std::size_t>(v)] + kCapacityTolerance < load) {
        continue;
      }
      const auto undo_token = objective.assign(u, v);
      if (objective.partial_cost() < best.delay) {
        remaining[static_cast<std::size_t>(v)] -= load;
        current[static_cast<std::size_t>(u)] = v;
        self(self, depth + 1);
        current[static_cast<std::size_t>(u)] = -1;
        remaining[static_cast<std::size_t>(v)] += load;
      }
      objective.undo(undo_token);
    }
  };
  recurse(recurse, 0);

  if (best.delay == kInf) return std::nullopt;
  best.explored_states = states;
  QP_INVARIANT(
      [&] {
        std::vector<double> used(capacities.size(), 0.0);
        for (std::size_t u = 0; u < best.placement.size(); ++u) {
          const int v = best.placement[u];
          if (v < 0 || v >= num_nodes) return false;
          used[static_cast<std::size_t>(v)] += element_loads[u];
        }
        const double slack =
            kCapacityTolerance *
            (1.0 + static_cast<double>(best.placement.size()));
        for (std::size_t v = 0; v < used.size(); ++v) {
          if (used[v] > capacities[v] + slack) return false;
        }
        return std::isfinite(best.delay) && best.delay >= 0.0;
      }(),
      "exact search must return a capacity-feasible complete placement "
      "with a finite non-negative delay");
  return best;
}

/// Objective Delta_f(v0): per-quorum running max distance from the source.
class SourceMaxDelayObjective {
 public:
  SourceMaxDelayObjective(const SsqppInstance& instance)
      : instance_(instance),
        quorum_max_(static_cast<std::size_t>(instance.system().num_quorums()),
                    0.0),
        quorums_of_(static_cast<std::size_t>(instance.system().universe_size())) {
    for (int q = 0; q < instance.system().num_quorums(); ++q) {
      for (int u : instance.system().quorum(q)) {
        quorums_of_[static_cast<std::size_t>(u)].push_back(q);
      }
    }
  }

  struct Undo {
    // (quorum, previous max) pairs stored in a shared stack.
    std::size_t stack_begin = 0;
    double cost_before = 0.0;
  };

  Undo assign(int u, int v) {
    Undo token{undo_stack_.size(), cost_};
    const double dist = instance_.metric()(instance_.source(), v);
    for (int q : quorums_of_[static_cast<std::size_t>(u)]) {
      const double old = quorum_max_[static_cast<std::size_t>(q)];
      if (dist > old) {
        undo_stack_.emplace_back(q, old);
        quorum_max_[static_cast<std::size_t>(q)] = dist;
        cost_ += instance_.strategy().probability(q) * (dist - old);
      }
    }
    return token;
  }

  void undo(const Undo& token) {
    while (undo_stack_.size() > token.stack_begin) {
      const auto [q, old] = undo_stack_.back();
      undo_stack_.pop_back();
      quorum_max_[static_cast<std::size_t>(q)] = old;
    }
    cost_ = token.cost_before;
  }

  double partial_cost() const { return cost_; }

 private:
  const SsqppInstance& instance_;
  std::vector<double> quorum_max_;
  std::vector<std::vector<int>> quorums_of_;
  std::vector<std::pair<int, double>> undo_stack_;
  double cost_ = 0.0;
};

/// Objective Avg_v Delta_f(v): running max per (client, quorum) pair.
class AverageMaxDelayObjective {
 public:
  AverageMaxDelayObjective(const QppInstance& instance)
      : instance_(instance),
        num_quorums_(instance.system().num_quorums()),
        pair_max_(static_cast<std::size_t>(instance.num_nodes()) *
                      static_cast<std::size_t>(num_quorums_),
                  0.0),
        quorums_of_(static_cast<std::size_t>(instance.system().universe_size())) {
    for (int q = 0; q < num_quorums_; ++q) {
      for (int u : instance_.system().quorum(q)) {
        quorums_of_[static_cast<std::size_t>(u)].push_back(q);
      }
    }
  }

  struct Undo {
    std::size_t stack_begin = 0;
    double cost_before = 0.0;
  };

  Undo assign(int u, int v) {
    Undo token{undo_stack_.size(), cost_};
    for (int q : quorums_of_[static_cast<std::size_t>(u)]) {
      const double p = instance_.strategy().probability(q);
      for (int client = 0; client < instance_.num_nodes(); ++client) {
        const double w =
            instance_.client_weights()[static_cast<std::size_t>(client)];
        if (w == 0.0) continue;
        const std::size_t idx =
            static_cast<std::size_t>(client) *
                static_cast<std::size_t>(num_quorums_) +
            static_cast<std::size_t>(q);
        const double dist = instance_.metric()(client, v);
        if (dist > pair_max_[idx]) {
          undo_stack_.emplace_back(idx, pair_max_[idx]);
          cost_ += w * p * (dist - pair_max_[idx]);
          pair_max_[idx] = dist;
        }
      }
    }
    return token;
  }

  void undo(const Undo& token) {
    while (undo_stack_.size() > token.stack_begin) {
      const auto [idx, old] = undo_stack_.back();
      undo_stack_.pop_back();
      pair_max_[idx] = old;
    }
    cost_ = token.cost_before;
  }

  double partial_cost() const { return cost_; }

 private:
  const QppInstance& instance_;
  int num_quorums_;
  std::vector<double> pair_max_;
  std::vector<std::vector<int>> quorums_of_;
  std::vector<std::pair<std::size_t, double>> undo_stack_;
  double cost_ = 0.0;
};

/// Objective Avg_v Gamma_f(v) = sum_u load(u) * avgdist(f(u)): separable.
class AverageTotalDelayObjective {
 public:
  AverageTotalDelayObjective(const QppInstance& instance)
      : loads_(instance.element_loads()),
        average_distance_(static_cast<std::size_t>(instance.num_nodes()), 0.0) {
    for (int v = 0; v < instance.num_nodes(); ++v) {
      double total = 0.0;
      for (int client = 0; client < instance.num_nodes(); ++client) {
        total += instance.client_weights()[static_cast<std::size_t>(client)] *
                 instance.metric()(client, v);
      }
      average_distance_[static_cast<std::size_t>(v)] = total;
    }
  }

  struct Undo {
    double cost_before = 0.0;
  };

  Undo assign(int u, int v) {
    Undo token{cost_};
    cost_ += loads_[static_cast<std::size_t>(u)] *
             average_distance_[static_cast<std::size_t>(v)];
    return token;
  }

  void undo(const Undo& token) { cost_ = token.cost_before; }

  double partial_cost() const { return cost_; }

 private:
  const std::vector<double>& loads_;
  std::vector<double> average_distance_;
  double cost_ = 0.0;
};

}  // namespace

std::optional<ExactResult> exact_ssqpp(const SsqppInstance& instance,
                                       const ExactOptions& options) {
  SourceMaxDelayObjective objective(instance);
  return branch_and_bound(instance.metric(), instance.capacities(),
                          instance.element_loads(), objective, options);
}

std::optional<ExactResult> exact_qpp_max_delay(const QppInstance& instance,
                                               const ExactOptions& options) {
  AverageMaxDelayObjective objective(instance);
  return branch_and_bound(instance.metric(), instance.capacities(),
                          instance.element_loads(), objective, options);
}

std::optional<ExactResult> exact_qpp_total_delay(const QppInstance& instance,
                                                 const ExactOptions& options) {
  AverageTotalDelayObjective objective(instance);
  return branch_and_bound(instance.metric(), instance.capacities(),
                          instance.element_loads(), objective, options);
}

}  // namespace qp::core
