#include "core/specialized.hpp"

#include "core/evaluators.hpp"
#include "core/grid_layout.hpp"
#include "core/majority_layout.hpp"
#include "core/qpp_solver.hpp"

namespace qp::core {

namespace {

/// Shared Thm 3.3 loop: builds the Sec 4 layout from every candidate source
/// and keeps the placement minimizing the full QPP objective.
template <typename LayoutFn>
std::optional<SpecializedQppResult> best_over_sources(
    const QppInstance& instance, LayoutFn&& layout_from) {
  std::optional<SpecializedQppResult> best;
  for (int source = 0; source < instance.num_nodes(); ++source) {
    const SsqppInstance view = single_source_view(instance, source);
    const auto layout = layout_from(view);
    if (!layout) continue;
    const double average = average_max_delay(instance, layout->placement);
    if (!best || average < best->average_delay) {
      SpecializedQppResult result;
      result.placement = layout->placement;
      result.chosen_source = source;
      result.average_delay = average;
      result.source_delay = layout->delay;
      best = std::move(result);
    }
  }
  return best;
}

}  // namespace

std::optional<SpecializedQppResult> solve_qpp_grid(const QppInstance& instance,
                                                   int k) {
  return best_over_sources(instance, [k](const SsqppInstance& view) {
    return optimal_grid_layout(view, k);
  });
}

std::optional<SpecializedQppResult> solve_qpp_majority(
    const QppInstance& instance, int t) {
  return best_over_sources(instance, [t](const SsqppInstance& view) {
    return majority_layout(view, t);
  });
}

}  // namespace qp::core
