#include "core/ssqpp_lp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "lp/model.hpp"
#include "obs/obs.hpp"

namespace qp::core {

namespace {

/// Contract helper: every x_tu / x_tQ column of a (filtered) solution
/// carries total mass 1 -- the Sec 3.3.1 filtering guarantee.
[[maybe_unused]] bool columns_stochastic(const FractionalSsqpp& solution,
                                         double tolerance) {
  for (int u = 0; u < solution.universe_size; ++u) {
    double mass = 0.0;
    for (int t = 0; t < solution.num_nodes; ++t) mass += solution.xu(t, u);
    if (std::abs(mass - 1.0) > tolerance) return false;
  }
  for (int q = 0; q < solution.num_quorums; ++q) {
    double mass = 0.0;
    for (int t = 0; t < solution.num_nodes; ++t) mass += solution.xq(t, q);
    if (std::abs(mass - 1.0) > tolerance) return false;
  }
  return true;
}

}  // namespace

double FractionalSsqpp::quorum_distance(int q) const {
  double dq = 0.0;
  for (int t = 0; t < num_nodes; ++t) {
    dq += sorted_distance[static_cast<std::size_t>(t)] * xq(t, q);
  }
  return dq;
}

FractionalSsqpp solve_ssqpp_lp(const SsqppInstance& instance,
                               const lp::SimplexOptions& options) {
  const int n = instance.num_nodes();
  const int num_elements = instance.system().universe_size();
  const int num_quorums = instance.system().num_quorums();
  const std::vector<double>& loads = instance.element_loads();

  FractionalSsqpp out;
  out.num_nodes = n;
  out.universe_size = num_elements;
  out.num_quorums = num_quorums;
  out.node_order = instance.metric().nodes_by_distance_from(instance.source());
  out.sorted_distance.resize(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    out.sorted_distance[static_cast<std::size_t>(t)] = instance.metric()(
        instance.source(), out.node_order[static_cast<std::size_t>(t)]);
  }
  out.quorum_probability = instance.strategy().probabilities();

  lp::Model model;
  // Variable ids; -1 marks variables fixed to zero by constraint (13).
  std::vector<int> var_tu(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(num_elements), -1);
  std::vector<int> var_tq(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(num_quorums), -1);
  const auto tu = [&](int t, int u) -> int& {
    return var_tu[static_cast<std::size_t>(t) *
                      static_cast<std::size_t>(num_elements) +
                  static_cast<std::size_t>(u)];
  };
  const auto tq = [&](int t, int q) -> int& {
    return var_tq[static_cast<std::size_t>(t) *
                      static_cast<std::size_t>(num_quorums) +
                  static_cast<std::size_t>(q)];
  };
  for (int t = 0; t < n; ++t) {
    const double cap =
        instance.capacity(out.node_order[static_cast<std::size_t>(t)]);
    for (int u = 0; u < num_elements; ++u) {
      if (loads[static_cast<std::size_t>(u)] <= cap + 1e-12) {  // (13)
        tu(t, u) = model.add_variable(0.0);
      }
    }
    for (int q = 0; q < num_quorums; ++q) {
      // Objective (9): sum_Q p0(Q) sum_t d_t x_{tQ}.
      tq(t, q) = model.add_variable(
          instance.strategy().probability(q) *
          out.sorted_distance[static_cast<std::size_t>(t)]);
    }
  }

  // (10): each element placed exactly once.
  for (int u = 0; u < num_elements; ++u) {
    std::vector<std::pair<int, double>> terms;
    for (int t = 0; t < n; ++t) {
      if (tu(t, u) >= 0) terms.emplace_back(tu(t, u), 1.0);
    }
    if (terms.empty()) {
      out.status = lp::SolveStatus::kInfeasible;  // element fits nowhere
      return out;
    }
    model.add_constraint(std::move(terms), lp::Relation::kEqual, 1.0);
  }
  // (11): each quorum completes exactly once.
  for (int q = 0; q < num_quorums; ++q) {
    std::vector<std::pair<int, double>> terms;
    for (int t = 0; t < n; ++t) terms.emplace_back(tq(t, q), 1.0);
    model.add_constraint(std::move(terms), lp::Relation::kEqual, 1.0);
  }
  // (12): node capacities.
  for (int t = 0; t < n; ++t) {
    std::vector<std::pair<int, double>> terms;
    for (int u = 0; u < num_elements; ++u) {
      if (tu(t, u) >= 0) {
        terms.emplace_back(tu(t, u), loads[static_cast<std::size_t>(u)]);
      }
    }
    if (!terms.empty()) {
      model.add_constraint(
          std::move(terms), lp::Relation::kLessEqual,
          instance.capacity(out.node_order[static_cast<std::size_t>(t)]));
    }
  }
  // (14): prefix of x_{.Q} dominated by prefix of x_{.u} for each u in Q.
  // The t = n-1 row is implied by (10) and (11), so it is skipped.
  for (int q = 0; q < num_quorums; ++q) {
    for (int u : instance.system().quorum(q)) {
      std::vector<std::pair<int, double>> prefix;
      for (int t = 0; t + 1 < n; ++t) {
        prefix.emplace_back(tq(t, q), 1.0);
        if (tu(t, u) >= 0) prefix.emplace_back(tu(t, u), -1.0);
        model.add_constraint(prefix, lp::Relation::kLessEqual, 0.0);
      }
    }
  }

  // Model size of LP (9)-(14); a pure function of the instance.
  QP_COUNTER_ADD("ssqpp_lp.models", 1);
  QP_COUNTER_ADD("ssqpp_lp.variables", model.num_variables());
  QP_COUNTER_ADD("ssqpp_lp.constraints", model.num_constraints());
  const lp::Solution solution = lp::solve(model, options);
  out.status = solution.status;
  if (solution.status != lp::SolveStatus::kOptimal) return out;
  out.objective = solution.objective;
  out.x_tu.assign(var_tu.size(), 0.0);
  out.x_tq.assign(var_tq.size(), 0.0);
  for (std::size_t i = 0; i < var_tu.size(); ++i) {
    if (var_tu[i] >= 0) {
      out.x_tu[i] =
          std::max(0.0, solution.values[static_cast<std::size_t>(var_tu[i])]);
    }
  }
  for (std::size_t i = 0; i < var_tq.size(); ++i) {
    out.x_tq[i] =
        std::max(0.0, solution.values[static_cast<std::size_t>(var_tq[i])]);
  }
  QP_INVARIANT(check::validate_lp_solution(instance, out).ok(),
               "LP (9)-(14) optimum must be primal-feasible");
  return out;
}

namespace {

/// Applies the Sec 3.3.1 filtering to one column (fixed u or Q) laid out
/// with stride over t: x~_t = min(alpha * x_t, 1 - mass so far).
void filter_column(const std::vector<double>& x, std::vector<double>& out,
                   int num_rows, std::size_t offset, std::size_t stride,
                   double alpha) {
  double cumulative = 0.0;
  for (int t = 0; t < num_rows; ++t) {
    const std::size_t idx = offset + static_cast<std::size_t>(t) * stride;
    const double headroom = 1.0 - cumulative;
    if (headroom <= 0.0) {
      out[idx] = 0.0;
      continue;
    }
    const double value = std::min(alpha * x[idx], headroom);
    out[idx] = value;
    cumulative += value;
  }
}

}  // namespace

FractionalSsqpp filter_fractional(const FractionalSsqpp& fractional,
                                  double alpha) {
  if (!(alpha > 1.0)) {
    throw std::invalid_argument("filter_fractional: alpha > 1 required");
  }
  if (fractional.status != lp::SolveStatus::kOptimal) {
    throw std::invalid_argument("filter_fractional: needs an optimal solution");
  }
  FractionalSsqpp out = fractional;
  const auto num_elements = static_cast<std::size_t>(fractional.universe_size);
  const auto num_quorums = static_cast<std::size_t>(fractional.num_quorums);
  for (std::size_t u = 0; u < num_elements; ++u) {
    filter_column(fractional.x_tu, out.x_tu, fractional.num_nodes, u,
                  num_elements, alpha);
  }
  for (std::size_t q = 0; q < num_quorums; ++q) {
    filter_column(fractional.x_tq, out.x_tq, fractional.num_nodes, q,
                  num_quorums, alpha);
  }
  // Recompute the (no larger) objective of the filtered solution.
  out.objective = 0.0;
  for (int q = 0; q < fractional.num_quorums; ++q) {
    out.objective +=
        fractional.quorum_probability[static_cast<std::size_t>(q)] *
        out.quorum_distance(q);
  }
  QP_INVARIANT(columns_stochastic(out, 1e-6),
               "alpha-filtering must keep per-column mass exactly 1");
  QP_INVARIANT(out.objective <= fractional.objective + 1e-6,
               "filtering moves mass toward the source, so the objective "
               "cannot grow (paper Sec 3.3.1)");
  return out;
}

}  // namespace qp::core
