#include "core/multi_strategy.hpp"

#include <limits>
#include <stdexcept>

#include "core/evaluators.hpp"

namespace qp::core {

namespace {

void check_arity(const graph::Metric& metric,
                 const quorum::QuorumSystem& system,
                 const PerClientStrategies& strategies) {
  if (static_cast<int>(strategies.size()) != metric.num_points()) {
    throw std::invalid_argument(
        "multi-strategy: one strategy per client required");
  }
  for (const quorum::AccessStrategy& p : strategies) {
    if (p.num_quorums() != system.num_quorums()) {
      throw std::invalid_argument("multi-strategy: strategy/system mismatch");
    }
  }
}

std::vector<double> normalized(std::vector<double> weights, int n) {
  if (static_cast<int>(weights.size()) != n) {
    throw std::invalid_argument("multi-strategy: one weight per client");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0)) {
      throw std::invalid_argument("multi-strategy: weights must be >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("multi-strategy: weights must not all be 0");
  }
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

double average_max_delay_multi(const graph::Metric& metric,
                               const quorum::QuorumSystem& system,
                               const PerClientStrategies& strategies,
                               const std::vector<double>& client_weights,
                               const Placement& placement) {
  check_arity(metric, system, strategies);
  const std::vector<double> weights =
      normalized(client_weights, metric.num_points());
  double total = 0.0;
  for (int v = 0; v < metric.num_points(); ++v) {
    if (weights[static_cast<std::size_t>(v)] == 0.0) continue;
    total += weights[static_cast<std::size_t>(v)] *
             expected_max_delay(metric, system,
                                strategies[static_cast<std::size_t>(v)],
                                placement, v);
  }
  return total;
}

int best_relay_node_multi(const graph::Metric& metric,
                          const quorum::QuorumSystem& system,
                          const PerClientStrategies& strategies,
                          const Placement& placement) {
  check_arity(metric, system, strategies);
  int best = 0;
  double best_delay = std::numeric_limits<double>::infinity();
  for (int v = 0; v < metric.num_points(); ++v) {
    const double delay = expected_max_delay(
        metric, system, strategies[static_cast<std::size_t>(v)], placement, v);
    if (delay < best_delay) {
      best_delay = delay;
      best = v;
    }
  }
  return best;
}

double relay_delay_multi(const graph::Metric& metric,
                         const quorum::QuorumSystem& system,
                         const PerClientStrategies& strategies,
                         const std::vector<double>& client_weights,
                         const Placement& placement, int relay) {
  check_arity(metric, system, strategies);
  if (relay < 0 || relay >= metric.num_points()) {
    throw std::invalid_argument("relay_delay_multi: relay out of range");
  }
  const std::vector<double> weights =
      normalized(client_weights, metric.num_points());
  double total = 0.0;
  for (int v = 0; v < metric.num_points(); ++v) {
    const double w = weights[static_cast<std::size_t>(v)];
    if (w == 0.0) continue;
    double expected = 0.0;
    for (int q = 0; q < system.num_quorums(); ++q) {
      expected +=
          strategies[static_cast<std::size_t>(v)].probability(q) *
          (metric(v, relay) +
           max_delay(metric, system.quorum(q), placement, relay));
    }
    total += w * expected;
  }
  return total;
}

quorum::AccessStrategy average_strategy(
    const quorum::QuorumSystem& system, const PerClientStrategies& strategies,
    const std::vector<double>& client_weights) {
  if (strategies.empty()) {
    throw std::invalid_argument("average_strategy: no strategies");
  }
  const std::vector<double> weights =
      normalized(client_weights, static_cast<int>(strategies.size()));
  std::vector<double> mean(static_cast<std::size_t>(system.num_quorums()), 0.0);
  for (std::size_t v = 0; v < strategies.size(); ++v) {
    if (strategies[v].num_quorums() != system.num_quorums()) {
      throw std::invalid_argument("average_strategy: strategy/system mismatch");
    }
    for (int q = 0; q < system.num_quorums(); ++q) {
      mean[static_cast<std::size_t>(q)] +=
          weights[v] * strategies[v].probability(q);
    }
  }
  return quorum::AccessStrategy(system, std::move(mean));
}

std::optional<MultiStrategyQppResult> solve_qpp_multi(
    const graph::Metric& metric, const std::vector<double>& capacities,
    const quorum::QuorumSystem& system, const PerClientStrategies& strategies,
    const std::vector<double>& client_weights, const QppSolveOptions& options) {
  check_arity(metric, system, strategies);
  // Under rate-weighted averaging, p-bar's element loads are the true
  // expected loads of the multi-strategy system, so capacities are enforced
  // against the correct quantities.
  const quorum::AccessStrategy mean =
      average_strategy(system, strategies, client_weights);
  const QppInstance averaged(metric, capacities, system, mean, client_weights);

  // Run the standard pipeline under p-bar, then evaluate each candidate
  // placement with the true multi-strategy objective.
  std::vector<int> candidates = options.candidate_sources;
  if (candidates.empty()) {
    for (int v = 0; v < metric.num_points(); ++v) candidates.push_back(v);
  }
  std::optional<MultiStrategyQppResult> best;
  for (int source : candidates) {
    const SsqppInstance view = single_source_view(averaged, source);
    const auto single = solve_ssqpp(view, options.alpha, options.simplex);
    if (!single) continue;
    const double delay = average_max_delay_multi(
        metric, system, strategies, client_weights, single->placement);
    if (!best || delay < best->average_delay) {
      MultiStrategyQppResult result;
      result.placement = single->placement;
      result.chosen_source = source;
      result.average_delay = delay;
      result.load_violation = max_capacity_violation(
          averaged.element_loads(), capacities, single->placement);
      best = std::move(result);
    }
  }
  return best;
}

}  // namespace qp::core
