#include "core/majority_layout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "core/capacity.hpp"
#include "core/evaluators.hpp"

namespace qp::core {

namespace {

/// C(a, b) for 0 <= b <= a (0 outside that range). Exact in long double for
/// the n <= ~60 range these layouts operate in.
long double binomial(int a, int b) {
  if (b < 0 || b > a || a < 0) return 0.0L;
  long double result = 1.0L;
  b = std::min(b, a - b);
  for (int i = 1; i <= b; ++i) {
    result = result * static_cast<long double>(a - b + i) /
             static_cast<long double>(i);
  }
  return result;
}

}  // namespace

double majority_delay_formula(std::vector<double> slot_distances, int t) {
  const int n = static_cast<int>(slot_distances.size());
  if (t < 1 || t > n || 2 * t <= n) {
    throw std::invalid_argument(
        "majority_delay_formula: need 1 <= t <= n and 2t > n");
  }
  std::sort(slot_distances.begin(), slot_distances.end(),
            std::greater<double>());
  const long double total = binomial(n, t);
  long double sum = 0.0L;
  for (int i = 1; i <= n - t + 1; ++i) {
    sum += static_cast<long double>(
               slot_distances[static_cast<std::size_t>(i - 1)]) *
           binomial(n - i, t - 1);
  }
  return static_cast<double>(sum / total);
}

namespace {

void validate_majority_instance(const SsqppInstance& instance, int t) {
  const int n = instance.system().universe_size();
  if (t < 1 || t > n || 2 * t <= n) {
    throw std::invalid_argument("majority_layout: need 1 <= t <= n, 2t > n");
  }
  const long double expected_quorums = binomial(n, t);
  if (static_cast<long double>(instance.system().num_quorums()) !=
      expected_quorums) {
    throw std::invalid_argument(
        "majority_layout: system is not the full threshold-t family");
  }
  for (int q = 0; q < instance.system().num_quorums(); ++q) {
    if (static_cast<int>(instance.system().quorum(q).size()) != t) {
      throw std::invalid_argument(
          "majority_layout: quorum of wrong cardinality");
    }
    if (std::abs(instance.strategy().probability(q) -
                 1.0 / static_cast<double>(expected_quorums)) > 1e-9) {
      throw std::invalid_argument(
          "majority_layout: uniform access strategy required (Sec 4.2)");
    }
  }
}

}  // namespace

std::optional<MajorityLayoutResult> majority_layout(
    const SsqppInstance& instance, int t) {
  validate_majority_instance(instance, t);
  const int n = instance.system().universe_size();
  // Under the uniform strategy each element lies in C(n-1, t-1) of the
  // C(n, t) quorums, i.e. load(u) = t / n.
  const double load = static_cast<double>(t) / n;

  std::vector<CapacitySlot> slots = capacity_slots(
      instance.metric(), instance.capacities(), load, instance.source(), n);
  if (static_cast<int>(slots.size()) < n) return std::nullopt;
  slots.resize(static_cast<std::size_t>(n));

  MajorityLayoutResult result;
  result.placement.resize(static_cast<std::size_t>(n));
  std::vector<double> distances(static_cast<std::size_t>(n));
  for (int u = 0; u < n; ++u) {
    result.placement[static_cast<std::size_t>(u)] =
        slots[static_cast<std::size_t>(u)].node;
    distances[static_cast<std::size_t>(u)] =
        slots[static_cast<std::size_t>(u)].distance;
  }
  result.delay = source_expected_max_delay(instance, result.placement);
  result.formula_delay = majority_delay_formula(std::move(distances), t);
  QP_INVARIANT(
      check::validate_placement(instance, result.placement, {1.0, 1e-9}).ok(),
      "Sec 4.2 majority layout must respect capacities exactly (Thm 1.3)");
  QP_INVARIANT(std::abs(result.delay - result.formula_delay) <=
                   1e-6 * std::max(1.0, result.formula_delay),
               "measured Delta_f(v0) must equal the eq. (19) closed form "
               "(placement invariance, paper Sec 4.2)");
  return result;
}

}  // namespace qp::core
