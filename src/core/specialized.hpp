#pragma once

/// \file specialized.hpp
/// Theorem 1.3: for the Grid and Majority systems under the uniform
/// strategy, the optimal single-source layouts of Sec 4 combined with the
/// relay reduction (Thm 3.3) give placements that respect capacities
/// EXACTLY (no (alpha+1) blow-up) and whose average max-delay is within a
/// factor 5 of the optimum over all capacity-respecting placements.

#include <optional>

#include "core/instance.hpp"

namespace qp::core {

struct SpecializedQppResult {
  Placement placement;
  int chosen_source = -1;      ///< source whose Sec 4 layout won
  double average_delay = 0.0;  ///< Avg_v Delta_f(v); <= 5 * OPT by Thm 1.3
  double source_delay = 0.0;   ///< Delta_f(chosen_source) of that layout
};

/// Thm 1.3 for the Grid system: instance.system() must be quorum::grid(k)
/// with the uniform strategy. Tries the optimal Sec 4.1 layout from every
/// node and returns the best full-objective placement. Returns std::nullopt
/// if capacities admit fewer than k^2 slots.
/// \throws std::invalid_argument if the system/strategy do not match.
std::optional<SpecializedQppResult> solve_qpp_grid(const QppInstance& instance,
                                                   int k);

/// Thm 1.3 for Majority: instance.system() must be quorum::majority(n, t)
/// with the uniform strategy. Same contract as solve_qpp_grid.
std::optional<SpecializedQppResult> solve_qpp_majority(
    const QppInstance& instance, int t);

}  // namespace qp::core
