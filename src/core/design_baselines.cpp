#include "core/design_baselines.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "check/contracts.hpp"

namespace qp::core {

SinglePointDesign lin_single_point_design(
    const graph::Metric& metric, const std::vector<double>& client_weights) {
  const int n = metric.num_points();
  if (n == 0) {
    throw std::invalid_argument("lin_single_point_design: empty metric");
  }
  std::vector<double> weights = client_weights;
  if (weights.empty()) {
    weights.assign(static_cast<std::size_t>(n), 1.0);
  }
  if (static_cast<int>(weights.size()) != n) {
    throw std::invalid_argument(
        "lin_single_point_design: one weight per point required");
  }
  double total_weight = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0)) {
      throw std::invalid_argument(
          "lin_single_point_design: weights must be >= 0");
    }
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument(
        "lin_single_point_design: weights must not all be zero");
  }

  int median = 0;
  double best = std::numeric_limits<double>::infinity();
  for (int v = 0; v < n; ++v) {
    double sum = 0.0;
    for (int client = 0; client < n; ++client) {
      sum += weights[static_cast<std::size_t>(client)] * metric(client, v);
    }
    if (sum < best) {
      best = sum;
      median = v;
    }
  }

  quorum::QuorumSystem system(1, {{0}});
  quorum::AccessStrategy strategy(system, {1.0});
  SinglePointDesign out{std::move(system), std::move(strategy),
                        Placement{median}, median, best / total_weight};
  QP_INVARIANT(
      [&] {
        if (median < 0 || median >= n) return false;
        double recomputed = 0.0;
        for (int client = 0; client < n; ++client) {
          recomputed +=
              weights[static_cast<std::size_t>(client)] * metric(client, median);
        }
        return std::abs(recomputed / total_weight - out.average_delay) <=
               1e-9 + 1e-9 * std::abs(out.average_delay);
      }(),
      "single-point design must report the delay its median actually "
      "achieves");
  return out;
}

}  // namespace qp::core
