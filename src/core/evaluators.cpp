#include "core/evaluators.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "exec/parallel.hpp"

namespace qp::core {

namespace {

/// Weighted per-client averages (Avg_v Delta_f(v) / Gamma_f(v)): chunked
/// summation with ordered reduction. The chunk structure depends only on the
/// client count (exec::kReductionGrain), so the result is bit-identical for
/// any thread count; instances with <= kReductionGrain clients keep the
/// exact sequential summation order.
template <typename PerClient>
double weighted_client_average(const QppInstance& instance,
                               const PerClient& per_client) {
  return exec::parallel_map_reduce(
      static_cast<std::size_t>(instance.num_nodes()), 0.0,
      [&](std::size_t v) {
        const double weight = instance.client_weights()[v];
        if (weight == 0.0) return 0.0;
        return weight * per_client(static_cast<int>(v));
      },
      [](double acc, double term) { return acc + term; },
      exec::kReductionGrain);
}

}  // namespace

double max_delay(const graph::Metric& metric, const quorum::Quorum& quorum,
                 const Placement& placement, int client) {
  double worst = 0.0;
  for (int u : quorum) {
    worst = std::max(worst,
                     metric(client, placement[static_cast<std::size_t>(u)]));
  }
  return worst;
}

double total_delay(const graph::Metric& metric, const quorum::Quorum& quorum,
                   const Placement& placement, int client) {
  double total = 0.0;
  for (int u : quorum) {
    total += metric(client, placement[static_cast<std::size_t>(u)]);
  }
  return total;
}

double expected_max_delay(const graph::Metric& metric,
                          const quorum::QuorumSystem& system,
                          const quorum::AccessStrategy& strategy,
                          const Placement& placement, int client) {
  double expectation = 0.0;
  for (int qi = 0; qi < system.num_quorums(); ++qi) {
    expectation +=
        strategy.probability(qi) *
        max_delay(metric, system.quorum(qi), placement, client);
  }
  return expectation;
}

double expected_total_delay(const graph::Metric& metric,
                            const quorum::QuorumSystem& system,
                            const quorum::AccessStrategy& strategy,
                            const Placement& placement, int client) {
  double expectation = 0.0;
  for (int qi = 0; qi < system.num_quorums(); ++qi) {
    expectation +=
        strategy.probability(qi) *
        total_delay(metric, system.quorum(qi), placement, client);
  }
  return expectation;
}

namespace {

void check_placement(const Placement& placement, int universe_size,
                     int num_nodes, const char* where) {
  if (!is_valid_placement(placement, universe_size, num_nodes)) {
    throw std::invalid_argument(std::string(where) + ": invalid placement");
  }
}

}  // namespace

double average_max_delay(const QppInstance& instance,
                         const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "average_max_delay");
  return weighted_client_average(instance, [&](int v) {
    return expected_max_delay(instance.metric(), instance.system(),
                              instance.strategy(), placement, v);
  });
}

double average_total_delay(const QppInstance& instance,
                           const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "average_total_delay");
  return weighted_client_average(instance, [&](int v) {
    return expected_total_delay(instance.metric(), instance.system(),
                                instance.strategy(), placement, v);
  });
}

double source_expected_max_delay(const SsqppInstance& instance,
                                 const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "source_expected_max_delay");
  return expected_max_delay(instance.metric(), instance.system(),
                            instance.strategy(), placement, instance.source());
}

std::vector<double> node_loads(const std::vector<double>& element_loads,
                               const Placement& placement, int num_nodes) {
  check_placement(placement, static_cast<int>(element_loads.size()), num_nodes,
                  "node_loads");
  std::vector<double> loads(static_cast<std::size_t>(num_nodes), 0.0);
  for (std::size_t u = 0; u < placement.size(); ++u) {
    loads[static_cast<std::size_t>(placement[u])] += element_loads[u];
  }
  return loads;
}

double max_capacity_violation(const std::vector<double>& element_loads,
                              const std::vector<double>& capacities,
                              const Placement& placement) {
  const std::vector<double> loads = node_loads(
      element_loads, placement, static_cast<int>(capacities.size()));
  double worst = 0.0;
  for (std::size_t v = 0; v < capacities.size(); ++v) {
    if (loads[v] == 0.0) continue;
    if (capacities[v] == 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    worst = std::max(worst, loads[v] / capacities[v]);
  }
  return worst;
}

bool is_capacity_feasible(const std::vector<double>& element_loads,
                          const std::vector<double>& capacities,
                          const Placement& placement, double tolerance) {
  const std::vector<double> loads = node_loads(
      element_loads, placement, static_cast<int>(capacities.size()));
  for (std::size_t v = 0; v < capacities.size(); ++v) {
    if (loads[v] > capacities[v] * (1.0 + tolerance) + tolerance) return false;
  }
  return true;
}

double relay_delay(const QppInstance& instance, const Placement& placement,
                   int relay_node) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "relay_delay");
  if (relay_node < 0 || relay_node >= instance.num_nodes()) {
    throw std::invalid_argument("relay_delay: relay node out of range");
  }
  double average_distance = 0.0;
  for (int v = 0; v < instance.num_nodes(); ++v) {
    average_distance += instance.client_weights()[static_cast<std::size_t>(v)] *
                        instance.metric()(v, relay_node);
  }
  return average_distance +
         expected_max_delay(instance.metric(), instance.system(),
                            instance.strategy(), placement, relay_node);
}

double closest_quorum_delay(const graph::Metric& metric,
                            const quorum::QuorumSystem& system,
                            const Placement& placement, int client) {
  if (system.num_quorums() == 0) {
    throw std::invalid_argument("closest_quorum_delay: empty quorum system");
  }
  double best = std::numeric_limits<double>::infinity();
  for (int qi = 0; qi < system.num_quorums(); ++qi) {
    best = std::min(best,
                    max_delay(metric, system.quorum(qi), placement, client));
  }
  return best;
}

double average_closest_quorum_delay(const QppInstance& instance,
                                    const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "average_closest_quorum_delay");
  return weighted_client_average(instance, [&](int v) {
    return closest_quorum_delay(instance.metric(), instance.system(),
                                placement, v);
  });
}

int best_relay_node(const QppInstance& instance, const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "best_relay_node");
  // Argmin with a strict `<`: ties resolve to the lowest node id under any
  // chunking, so the parallel result matches the sequential scan exactly.
  struct Best {
    double delay = std::numeric_limits<double>::infinity();
    int node = 0;
  };
  const Best best = exec::parallel_map_reduce(
      static_cast<std::size_t>(instance.num_nodes()), Best{},
      [&](std::size_t v) {
        return Best{expected_max_delay(instance.metric(), instance.system(),
                                       instance.strategy(), placement,
                                       static_cast<int>(v)),
                    static_cast<int>(v)};
      },
      [](Best acc, Best candidate) {
        return candidate.delay < acc.delay ? candidate : acc;
      },
      /*grain=*/4);
  return best.node;
}

}  // namespace qp::core
