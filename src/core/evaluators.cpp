#include "core/evaluators.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace qp::core {

double max_delay(const graph::Metric& metric, const quorum::Quorum& quorum,
                 const Placement& placement, int client) {
  double worst = 0.0;
  for (int u : quorum) {
    worst = std::max(worst,
                     metric(client, placement[static_cast<std::size_t>(u)]));
  }
  return worst;
}

double total_delay(const graph::Metric& metric, const quorum::Quorum& quorum,
                   const Placement& placement, int client) {
  double total = 0.0;
  for (int u : quorum) {
    total += metric(client, placement[static_cast<std::size_t>(u)]);
  }
  return total;
}

double expected_max_delay(const graph::Metric& metric,
                          const quorum::QuorumSystem& system,
                          const quorum::AccessStrategy& strategy,
                          const Placement& placement, int client) {
  double expectation = 0.0;
  for (int qi = 0; qi < system.num_quorums(); ++qi) {
    expectation +=
        strategy.probability(qi) *
        max_delay(metric, system.quorum(qi), placement, client);
  }
  return expectation;
}

double expected_total_delay(const graph::Metric& metric,
                            const quorum::QuorumSystem& system,
                            const quorum::AccessStrategy& strategy,
                            const Placement& placement, int client) {
  double expectation = 0.0;
  for (int qi = 0; qi < system.num_quorums(); ++qi) {
    expectation +=
        strategy.probability(qi) *
        total_delay(metric, system.quorum(qi), placement, client);
  }
  return expectation;
}

namespace {

void check_placement(const Placement& placement, int universe_size,
                     int num_nodes, const char* where) {
  if (!is_valid_placement(placement, universe_size, num_nodes)) {
    throw std::invalid_argument(std::string(where) + ": invalid placement");
  }
}

}  // namespace

double average_max_delay(const QppInstance& instance,
                         const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "average_max_delay");
  double average = 0.0;
  for (int v = 0; v < instance.num_nodes(); ++v) {
    const double weight = instance.client_weights()[static_cast<std::size_t>(v)];
    if (weight == 0.0) continue;
    average += weight * expected_max_delay(instance.metric(), instance.system(),
                                           instance.strategy(), placement, v);
  }
  return average;
}

double average_total_delay(const QppInstance& instance,
                           const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "average_total_delay");
  double average = 0.0;
  for (int v = 0; v < instance.num_nodes(); ++v) {
    const double weight = instance.client_weights()[static_cast<std::size_t>(v)];
    if (weight == 0.0) continue;
    average += weight * expected_total_delay(instance.metric(),
                                             instance.system(),
                                             instance.strategy(), placement, v);
  }
  return average;
}

double source_expected_max_delay(const SsqppInstance& instance,
                                 const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "source_expected_max_delay");
  return expected_max_delay(instance.metric(), instance.system(),
                            instance.strategy(), placement, instance.source());
}

std::vector<double> node_loads(const std::vector<double>& element_loads,
                               const Placement& placement, int num_nodes) {
  check_placement(placement, static_cast<int>(element_loads.size()), num_nodes,
                  "node_loads");
  std::vector<double> loads(static_cast<std::size_t>(num_nodes), 0.0);
  for (std::size_t u = 0; u < placement.size(); ++u) {
    loads[static_cast<std::size_t>(placement[u])] += element_loads[u];
  }
  return loads;
}

double max_capacity_violation(const std::vector<double>& element_loads,
                              const std::vector<double>& capacities,
                              const Placement& placement) {
  const std::vector<double> loads = node_loads(
      element_loads, placement, static_cast<int>(capacities.size()));
  double worst = 0.0;
  for (std::size_t v = 0; v < capacities.size(); ++v) {
    if (loads[v] == 0.0) continue;
    if (capacities[v] == 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    worst = std::max(worst, loads[v] / capacities[v]);
  }
  return worst;
}

bool is_capacity_feasible(const std::vector<double>& element_loads,
                          const std::vector<double>& capacities,
                          const Placement& placement, double tolerance) {
  const std::vector<double> loads = node_loads(
      element_loads, placement, static_cast<int>(capacities.size()));
  for (std::size_t v = 0; v < capacities.size(); ++v) {
    if (loads[v] > capacities[v] * (1.0 + tolerance) + tolerance) return false;
  }
  return true;
}

double relay_delay(const QppInstance& instance, const Placement& placement,
                   int relay_node) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "relay_delay");
  if (relay_node < 0 || relay_node >= instance.num_nodes()) {
    throw std::invalid_argument("relay_delay: relay node out of range");
  }
  double average_distance = 0.0;
  for (int v = 0; v < instance.num_nodes(); ++v) {
    average_distance += instance.client_weights()[static_cast<std::size_t>(v)] *
                        instance.metric()(v, relay_node);
  }
  return average_distance +
         expected_max_delay(instance.metric(), instance.system(),
                            instance.strategy(), placement, relay_node);
}

double closest_quorum_delay(const graph::Metric& metric,
                            const quorum::QuorumSystem& system,
                            const Placement& placement, int client) {
  if (system.num_quorums() == 0) {
    throw std::invalid_argument("closest_quorum_delay: empty quorum system");
  }
  double best = std::numeric_limits<double>::infinity();
  for (int qi = 0; qi < system.num_quorums(); ++qi) {
    best = std::min(best,
                    max_delay(metric, system.quorum(qi), placement, client));
  }
  return best;
}

double average_closest_quorum_delay(const QppInstance& instance,
                                    const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "average_closest_quorum_delay");
  double average = 0.0;
  for (int v = 0; v < instance.num_nodes(); ++v) {
    const double weight = instance.client_weights()[static_cast<std::size_t>(v)];
    if (weight == 0.0) continue;
    average += weight * closest_quorum_delay(instance.metric(),
                                             instance.system(), placement, v);
  }
  return average;
}

int best_relay_node(const QppInstance& instance, const Placement& placement) {
  check_placement(placement, instance.system().universe_size(),
                  instance.num_nodes(), "best_relay_node");
  int best = 0;
  double best_delay = std::numeric_limits<double>::infinity();
  for (int v = 0; v < instance.num_nodes(); ++v) {
    const double delay =
        expected_max_delay(instance.metric(), instance.system(),
                           instance.strategy(), placement, v);
    if (delay < best_delay) {
      best_delay = delay;
      best = v;
    }
  }
  return best;
}

}  // namespace qp::core
