#include "core/ssqpp_solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "assign/gap.hpp"
#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "core/evaluators.hpp"
#include "obs/obs.hpp"

namespace qp::core {

std::optional<Placement> round_filtered_ssqpp(const SsqppInstance& instance,
                                              const FractionalSsqpp& filtered,
                                              double alpha) {
  if (!(alpha > 1.0)) {
    throw std::invalid_argument("round_filtered_ssqpp: alpha > 1 required");
  }
  const int n = filtered.num_nodes;
  const int num_elements = filtered.universe_size;
  const std::vector<double>& loads = instance.element_loads();

  // GAP translation (Sec 3.3.1): machines are the sorted nodes, jobs the
  // elements; load p_{tu} = load(u) where x~_{tu} > 0, forbidden elsewhere;
  // cost c_{tu} = d_t; budget T_t = alpha * cap(v_t). The filtered solution
  // itself is a feasible fractional GAP solution, so it is rounded directly
  // (no re-solve).
  assign::GapInstance gap(num_elements, n);
  constexpr double kSupportEpsilon = 1e-9;
  for (int t = 0; t < n; ++t) {
    gap.set_capacity(
        t, alpha * instance.capacity(
                       filtered.node_order[static_cast<std::size_t>(t)]));
    for (int u = 0; u < num_elements; ++u) {
      if (filtered.xu(t, u) > kSupportEpsilon) {
        gap.set_load(t, u, loads[static_cast<std::size_t>(u)]);
        gap.set_cost(t, u,
                     filtered.sorted_distance[static_cast<std::size_t>(t)]);
      }
    }
  }
  assign::FractionalGap fractional;
  fractional.status = lp::SolveStatus::kOptimal;
  fractional.y.assign(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(num_elements),
                      0.0);
  for (int t = 0; t < n; ++t) {
    for (int u = 0; u < num_elements; ++u) {
      const double value = filtered.xu(t, u);
      if (value > kSupportEpsilon) {
        fractional.y[static_cast<std::size_t>(t) *
                         static_cast<std::size_t>(num_elements) +
                     static_cast<std::size_t>(u)] = value;
        fractional.objective +=
            value * filtered.sorted_distance[static_cast<std::size_t>(t)];
      }
    }
  }
  // Tiny support entries were dropped; renormalize each job's mass to 1 so
  // the rounding's sanity check passes.
  for (int u = 0; u < num_elements; ++u) {
    double mass = 0.0;
    for (int t = 0; t < n; ++t) {
      mass += fractional.y[static_cast<std::size_t>(t) *
                               static_cast<std::size_t>(num_elements) +
                           static_cast<std::size_t>(u)];
    }
    if (mass <= 0.0) return std::nullopt;
    for (int t = 0; t < n; ++t) {
      fractional.y[static_cast<std::size_t>(t) *
                       static_cast<std::size_t>(num_elements) +
                   static_cast<std::size_t>(u)] /= mass;
    }
  }

  const std::optional<assign::GapAssignment> rounded =
      assign::shmoys_tardos_round(gap, fractional);
  if (!rounded) return std::nullopt;

  Placement placement(static_cast<std::size_t>(num_elements), -1);
  for (int u = 0; u < num_elements; ++u) {
    const int t = rounded->job_to_machine[static_cast<std::size_t>(u)];
    placement[static_cast<std::size_t>(u)] =
        filtered.node_order[static_cast<std::size_t>(t)];
  }
  QP_INVARIANT(
      check::validate_placement(instance, placement, {alpha + 1.0, 1e-6}).ok(),
      "Shmoys-Tardos rounding must keep load within (alpha + 1) * cap "
      "(paper Thm 3.7)");
  return placement;
}

std::optional<SsqppResult> solve_ssqpp(const SsqppInstance& instance,
                                       double alpha,
                                       const lp::SimplexOptions& options) {
  if (!(alpha > 1.0)) {
    throw std::invalid_argument("solve_ssqpp: alpha > 1 required");
  }
  QP_REQUIRE(check::validate_instance(instance).ok(),
             "SSQPP instance violates its data contracts (metric / strategy "
             "/ capacities); see check::validate_instance");
  QP_SPAN("ssqpp.solve");
  QP_COUNTER_ADD("ssqpp.solves", 1);
  const FractionalSsqpp fractional = [&] {
    QP_SPAN("ssqpp.lp");
    return solve_ssqpp_lp(instance, options);
  }();
  if (fractional.status != lp::SolveStatus::kOptimal) return std::nullopt;
  const FractionalSsqpp filtered = [&] {
    QP_SPAN("ssqpp.filter");
    return filter_fractional(fractional, alpha);
  }();
  const std::optional<Placement> placement = [&] {
    QP_SPAN("ssqpp.round");
    return round_filtered_ssqpp(instance, filtered, alpha);
  }();
  if (!placement) return std::nullopt;
  QP_COUNTER_ADD("ssqpp.rounded", 1);

  SsqppResult result;
  result.placement = *placement;
  result.lp_objective = fractional.objective;
  result.delay = source_expected_max_delay(instance, *placement);
  result.delay_bound = alpha / (alpha - 1.0) * fractional.objective;
  result.load_violation = max_capacity_violation(
      instance.element_loads(), instance.capacities(), *placement);
  QP_INVARIANT(result.delay <= result.delay_bound + 1e-6,
               "Thm 3.7 delay bound Delta_f(v0) <= alpha/(alpha-1) * Z* "
               "violated by the rounded placement");
  QP_INVARIANT(result.load_violation <= alpha + 1.0 + 1e-6,
               "Thm 3.7 load bound load_f(v) <= (alpha + 1) * cap violated");
  return result;
}

std::optional<Placement> greedy_nearest_placement(
    const SsqppInstance& instance) {
  const std::vector<int> order =
      instance.metric().nodes_by_distance_from(instance.source());
  const std::vector<double>& loads = instance.element_loads();
  const int num_elements = instance.system().universe_size();

  // Heaviest elements first, each onto the nearest node that still fits.
  std::vector<int> elements(static_cast<std::size_t>(num_elements));
  for (int u = 0; u < num_elements; ++u) elements[static_cast<std::size_t>(u)] = u;
  std::sort(elements.begin(), elements.end(), [&](int a, int b) {
    return loads[static_cast<std::size_t>(a)] > loads[static_cast<std::size_t>(b)];
  });

  std::vector<double> remaining = instance.capacities();
  Placement placement(static_cast<std::size_t>(num_elements), -1);
  for (int u : elements) {
    bool placed = false;
    for (int node : order) {
      if (remaining[static_cast<std::size_t>(node)] + 1e-12 >=
          loads[static_cast<std::size_t>(u)]) {
        remaining[static_cast<std::size_t>(node)] -=
            loads[static_cast<std::size_t>(u)];
        placement[static_cast<std::size_t>(u)] = node;
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }
  QP_INVARIANT(max_capacity_violation(loads, instance.capacities(),
                                      placement) <= 1.0 + 1e-9,
               "greedy nearest placement must respect node capacities");
  return placement;
}

}  // namespace qp::core
