#pragma once

/// \file ssqpp_lp.hpp
/// The LP relaxation (paper eqs. (9)-(14)) of the Single-Source Quorum
/// Placement Problem and the alpha-filtering step of Sec 3.3.1.
///
/// Nodes are renamed v_0, v_1, ..., v_{n-1} in non-decreasing distance from
/// the source (d_0 <= d_1 <= ...). Variable x_{tu} places element u on node
/// v_t; x_{tQ} marks quorum Q as fully placed within the prefix
/// {v_0, ..., v_t}.

#include <vector>

#include "core/instance.hpp"
#include "lp/simplex.hpp"

namespace qp::core {

/// A fractional solution of LP (9)-(14), in sorted-node coordinates.
struct FractionalSsqpp {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  double objective = 0.0;            ///< Z* <= Delta_{f*}(v0)
  int num_nodes = 0;
  int universe_size = 0;
  int num_quorums = 0;
  std::vector<int> node_order;       ///< node_order[t] = original node id of v_t
  std::vector<double> sorted_distance;  ///< d_t = d(v0, v_t), non-decreasing
  std::vector<double> quorum_probability;  ///< p0(Q), copied from the strategy
  std::vector<double> x_tu;          ///< t-major: x_tu[t * |U| + u]
  std::vector<double> x_tq;          ///< t-major: x_tq[t * |Q| + q]

  double xu(int t, int u) const {
    return x_tu[static_cast<std::size_t>(t) *
                    static_cast<std::size_t>(universe_size) +
                static_cast<std::size_t>(u)];
  }
  double xq(int t, int q) const {
    return x_tq[static_cast<std::size_t>(t) *
                    static_cast<std::size_t>(num_quorums) +
                static_cast<std::size_t>(q)];
  }

  /// Per-quorum fractional completion distance D_Q = sum_t d_t x_{tQ}
  /// (paper Claim 3.8); objective == sum_Q p(Q) D_Q.
  double quorum_distance(int q) const;
};

/// Builds and solves LP (9)-(14) for the instance. Constraint (13) is
/// enforced by omitting variables x_{tu} with load(u) > cap(v_t).
FractionalSsqpp solve_ssqpp_lp(const SsqppInstance& instance,
                               const lp::SimplexOptions& options = {});

/// The alpha-filtering of Sec 3.3.1: x~ is the largest solution with
/// x~_{tu} <= alpha * x_{tu} and cumulative mass <= 1, taken in increasing t
/// (mass moves toward the source). Applied to both x_{tu} and x_{tQ}.
/// Guarantees: per-column mass exactly 1; constraint (14) still holds;
/// support of x~_{tQ} only on nodes with d_t <= (alpha/(alpha-1)) D_Q.
/// \throws std::invalid_argument unless alpha > 1 and fractional is optimal.
FractionalSsqpp filter_fractional(const FractionalSsqpp& fractional,
                                  double alpha);

}  // namespace qp::core
