#include "core/qpp_solver.hpp"

#include <algorithm>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "core/evaluators.hpp"
#include "exec/parallel.hpp"
#include "obs/obs.hpp"

namespace qp::core {

SsqppInstance single_source_view(const QppInstance& instance, int source) {
  return SsqppInstance(instance.metric(), instance.capacities(),
                       instance.system(), instance.strategy(), source);
}

std::optional<QppResult> solve_qpp(const QppInstance& instance,
                                   const QppSolveOptions& options) {
  QP_REQUIRE(check::validate_instance(instance).ok(),
             "QPP instance violates its data contracts (metric / strategy / "
             "capacities); see check::validate_instance");
  std::vector<int> candidates = options.candidate_sources;
  if (candidates.empty()) {
    candidates.resize(static_cast<std::size_t>(instance.num_nodes()));
    for (int v = 0; v < instance.num_nodes(); ++v) {
      candidates[static_cast<std::size_t>(v)] = v;
    }
    if (options.max_candidates > 0 &&
        options.max_candidates < instance.num_nodes()) {
      // Keep the nodes with the smallest total distance to all clients
      // (1-median order): cheap, and empirically where good relays live.
      std::vector<double> distance_sum(
          static_cast<std::size_t>(instance.num_nodes()));
      for (int v = 0; v < instance.num_nodes(); ++v) {
        distance_sum[static_cast<std::size_t>(v)] =
            instance.metric().distance_sum_from(v);
      }
      std::stable_sort(candidates.begin(), candidates.end(), [&](int a, int b) {
        return distance_sum[static_cast<std::size_t>(a)] <
               distance_sum[static_cast<std::size_t>(b)];
      });
      candidates.resize(static_cast<std::size_t>(options.max_candidates));
    }
  }

  // Relay sweep: every candidate v0 gets an independent SSQPP solve and
  // delay evaluation (the expensive part), written into its own slot. The
  // winner is then selected sequentially in candidate order, which keeps the
  // result bit-identical to the sequential sweep for any thread count.
  struct CandidateOutcome {
    std::optional<SsqppResult> single;
    double average = 0.0;
  };
  QP_SPAN("qpp.relay_sweep");
  QP_COUNTER_ADD("qpp.relay_candidates", candidates.size());
  std::vector<CandidateOutcome> outcomes(candidates.size());
  exec::parallel_for(candidates.size(), [&](std::size_t i) {
    const int source = candidates[i];
    const SsqppInstance view = single_source_view(instance, source);
    outcomes[i].single = solve_ssqpp(view, options.alpha, options.simplex);
    if (outcomes[i].single) {
      outcomes[i].average =
          average_max_delay(instance, outcomes[i].single->placement);
    }
  });

  std::optional<QppResult> best;
  double best_lp_bound = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::optional<SsqppResult>& single = outcomes[i].single;
    if (!single) continue;
    // Counted in the sequential winner-selection loop (never inside the
    // parallel sweep callback) so the tally order is fixed.
    QP_COUNTER_ADD("qpp.relay_feasible", 1);
    best_lp_bound = std::max(best_lp_bound, single->lp_objective);
    const double average = outcomes[i].average;
    if (!best || average < best->average_delay) {
      QppResult result;
      result.placement = single->placement;
      result.chosen_source = candidates[i];
      result.average_delay = average;
      result.load_violation = max_capacity_violation(
          instance.element_loads(), instance.capacities(), single->placement);
      result.best_lp_bound = best_lp_bound;
      best = std::move(result);
    }
  }
  if (best) best->best_lp_bound = best_lp_bound;
  QP_INVARIANT(
      !best || check::validate_placement(instance, best->placement,
                                         {options.alpha + 1.0, 1e-6})
                   .ok(),
      "Thm 1.2 load bound load_f(v) <= (alpha + 1) * cap violated");
  return best;
}

}  // namespace qp::core
