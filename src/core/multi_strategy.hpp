#pragma once

/// \file multi_strategy.hpp
/// The paper's Sec 6 generalization: every client v has its own access
/// strategy p_v. The structural Lemma 3.1 survives (with v0 the argmin of
/// each client's own expected delay), and Theorem 1.2 carries over by
/// solving the single-source problem under the rate-weighted average
/// strategy p-bar (the mix of quorums that actually arrives at the relay).

#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/qpp_solver.hpp"

namespace qp::core {

/// Per-client strategies, indexed by client/node id. All entries must be
/// over the same quorum system.
using PerClientStrategies = std::vector<quorum::AccessStrategy>;

/// Avg_v w_v Delta_{p_v}(v): the multi-strategy average max-delay
/// (objective of the Sec 6 formulation).
/// \throws std::invalid_argument if strategies.size() != num points or any
///         strategy's arity mismatches the system.
double average_max_delay_multi(const graph::Metric& metric,
                               const quorum::QuorumSystem& system,
                               const PerClientStrategies& strategies,
                               const std::vector<double>& client_weights,
                               const Placement& placement);

/// The relay node of the generalized Lemma 3.1: argmin_v Delta_{p_v}(v).
int best_relay_node_multi(const graph::Metric& metric,
                          const quorum::QuorumSystem& system,
                          const PerClientStrategies& strategies,
                          const Placement& placement);

/// Average relay delay when every client routes via `relay` but still draws
/// quorums from its own strategy:
///   Avg_v w_v sum_Q p_v(Q) (d(v, relay) + delta_f(relay, Q)).
/// Guaranteed <= 5 * average_max_delay_multi at the Lemma 3.1 relay node.
double relay_delay_multi(const graph::Metric& metric,
                         const quorum::QuorumSystem& system,
                         const PerClientStrategies& strategies,
                         const std::vector<double>& client_weights,
                         const Placement& placement, int relay);

/// The rate-weighted average strategy p-bar(Q) = sum_v w_v p_v(Q) -- the
/// quorum mix the relay node forwards (paper Sec 6).
quorum::AccessStrategy average_strategy(const quorum::QuorumSystem& system,
                                        const PerClientStrategies& strategies,
                                        const std::vector<double>& client_weights);

struct MultiStrategyQppResult {
  Placement placement;
  int chosen_source = -1;
  double average_delay = 0.0;   ///< multi-strategy objective of the placement
  double load_violation = 0.0;  ///< vs capacities, under p-bar loads
};

/// Thm 1.2 for per-client strategies: runs the standard solver under the
/// averaged strategy (whose element loads are the true expected loads) and
/// evaluates candidates under the true multi-strategy objective.
/// \throws std::invalid_argument on arity mismatches (weights must have one
///         entry per node; they are normalized internally).
std::optional<MultiStrategyQppResult> solve_qpp_multi(
    const graph::Metric& metric, const std::vector<double>& capacities,
    const quorum::QuorumSystem& system, const PerClientStrategies& strategies,
    const std::vector<double>& client_weights,
    const QppSolveOptions& options = {});

}  // namespace qp::core
