#include "core/grid_layout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "check/contracts.hpp"
#include "check/validate.hpp"
#include "core/capacity.hpp"
#include "core/evaluators.hpp"

namespace qp::core {

std::vector<std::pair<int, int>> grid_shell_fill_order(int k) {
  if (k < 1) throw std::invalid_argument("grid_shell_fill_order: k >= 1");
  std::vector<std::pair<int, int>> order;
  order.reserve(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  order.emplace_back(0, 0);
  for (int l = 1; l < k; ++l) {
    for (int r = 0; r < l; ++r) order.emplace_back(r, l);   // column part
    for (int c = 0; c <= l; ++c) order.emplace_back(l, c);  // row part
  }
  return order;
}

namespace {

void validate_grid_instance(const SsqppInstance& instance, int k) {
  if (k < 1) throw std::invalid_argument("optimal_grid_layout: k >= 1");
  if (instance.system().universe_size() != k * k ||
      instance.system().num_quorums() != k * k) {
    throw std::invalid_argument(
        "optimal_grid_layout: instance is not a k x k grid system");
  }
  // Quorum q = r*k + c must be exactly row r union column c (the layout's
  // optimality proof depends on this structure, not just the counts).
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) {
      quorum::Quorum expected;
      for (int j = 0; j < k; ++j) expected.push_back(r * k + j);
      for (int i = 0; i < k; ++i) {
        if (i != r) expected.push_back(i * k + c);
      }
      std::sort(expected.begin(), expected.end());
      if (instance.system().quorum(r * k + c) != expected) {
        throw std::invalid_argument(
            "optimal_grid_layout: quorum " + std::to_string(r * k + c) +
            " is not row " + std::to_string(r) + " union column " +
            std::to_string(c));
      }
    }
  }
  const double uniform = 1.0 / (k * k);
  for (int q = 0; q < instance.system().num_quorums(); ++q) {
    if (std::abs(instance.strategy().probability(q) - uniform) > 1e-9) {
      throw std::invalid_argument(
          "optimal_grid_layout: uniform access strategy required (Sec 4.1)");
    }
  }
}

}  // namespace

std::optional<GridLayoutResult> optimal_grid_layout(
    const SsqppInstance& instance, int k) {
  validate_grid_instance(instance, k);
  const int num_elements = k * k;
  // Uniform element load of the grid under the uniform strategy: each
  // element is in 2k - 1 quorums out of k^2.
  const double load = static_cast<double>(2 * k - 1) / (k * k);

  std::vector<CapacitySlot> slots =
      capacity_slots(instance.metric(), instance.capacities(), load,
                     instance.source(), num_elements);
  if (static_cast<int>(slots.size()) < num_elements) return std::nullopt;
  slots.resize(static_cast<std::size_t>(num_elements));  // k^2 nearest slots

  // tau_1 >= tau_2 >= ... >= tau_{k^2}: slot distances in decreasing order.
  std::reverse(slots.begin(), slots.end());

  const std::vector<std::pair<int, int>> order = grid_shell_fill_order(k);
  GridLayoutResult result;
  result.k = k;
  result.matrix.assign(static_cast<std::size_t>(num_elements), 0.0);
  result.placement.assign(static_cast<std::size_t>(num_elements), -1);
  for (int i = 0; i < num_elements; ++i) {
    const auto [r, c] = order[static_cast<std::size_t>(i)];
    const CapacitySlot& slot = slots[static_cast<std::size_t>(i)];
    result.matrix[static_cast<std::size_t>(r) * static_cast<std::size_t>(k) +
                  static_cast<std::size_t>(c)] = slot.distance;
    result.placement[static_cast<std::size_t>(r * k + c)] = slot.node;
  }
  result.delay = source_expected_max_delay(instance, result.placement);
  QP_INVARIANT(
      check::validate_placement(instance, result.placement, {1.0, 1e-9}).ok(),
      "Sec 4.1 grid layout must respect capacities exactly (Thm 1.3)");
  return result;
}

}  // namespace qp::core
